(* Unit and property tests for the dptrace layer: signatures, callstacks,
   events, streams, corpus, codec, validation. *)

module Signature = Dptrace.Signature
module Callstack = Dptrace.Callstack
module Event = Dptrace.Event
module Scenario = Dptrace.Scenario
module Stream = Dptrace.Stream
module Corpus = Dptrace.Corpus
module Codec = Dptrace.Codec
module Validate = Dptrace.Validate
module Wildcard = Dputil.Wildcard

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let sys_pats = [ Wildcard.compile "*.sys" ]

(* --- Signature --- *)

let test_signature_parts () =
  let s = Signature.of_string "fv.sys!QueryFileTable" in
  check Alcotest.string "module" "fv.sys" (Signature.module_part s);
  check Alcotest.string "function" "QueryFileTable" (Signature.function_part s);
  check Alcotest.string "name" "fv.sys!QueryFileTable" (Signature.name s)

let test_signature_dummy () =
  let s = Signature.hw_service "DiskService" in
  check Alcotest.string "module is whole name" "DiskService" (Signature.module_part s);
  check Alcotest.string "empty function" "" (Signature.function_part s)

let test_signature_interning () =
  let a = Signature.of_string "x.sys!F" in
  let b = Signature.of_string "x.sys!F" in
  check Alcotest.bool "equal" true (Signature.equal a b);
  check Alcotest.int "same id" (Signature.to_int a) (Signature.to_int b);
  check Alcotest.bool "of_int_unsafe inverse" true
    (Signature.equal a (Signature.of_int_unsafe (Signature.to_int a)))

let test_signature_make () =
  let s = Signature.make ~module_name:"se.sys" ~function_name:"Decrypt" in
  check Alcotest.string "name" "se.sys!Decrypt" (Signature.name s)

let test_signature_matches () =
  check Alcotest.bool "driver matches" true
    (Signature.matches sys_pats (Signature.of_string "fv.sys!Q"));
  check Alcotest.bool "kernel does not" false
    (Signature.matches sys_pats (Signature.of_string "kernel!AcquireLock"));
  check Alcotest.bool "dummy does not" false
    (Signature.matches sys_pats (Signature.hw_service "DiskService"))

(* --- Callstack --- *)

let stack l = Callstack.of_strings l

let test_callstack_basics () =
  let s = stack [ "a.sys!Top"; "b!Mid"; "c!Bottom" ] in
  check Alcotest.int "depth" 3 (Callstack.depth s);
  check (Alcotest.option Alcotest.string) "top" (Some "a.sys!Top")
    (Option.map Signature.name (Callstack.top s));
  check (Alcotest.option Alcotest.string) "empty top" None
    (Option.map Signature.name (Callstack.top (stack [])))

let test_callstack_push () =
  let s = stack [ "b!Mid" ] in
  let s' = Callstack.push (Signature.of_string "a!New") s in
  check (Alcotest.option Alcotest.string) "new top" (Some "a!New")
    (Option.map Signature.name (Callstack.top s'));
  check Alcotest.int "depth" 2 (Callstack.depth s');
  check Alcotest.int "original untouched" 1 (Callstack.depth s)

let test_callstack_topmost_matching () =
  let s = stack [ "kernel!AcquireLock"; "fv.sys!Q"; "fs.sys!R"; "App!Main" ] in
  check (Alcotest.option Alcotest.string) "first driver frame" (Some "fv.sys!Q")
    (Option.map Signature.name (Callstack.topmost_matching sys_pats s));
  check (Alcotest.option Alcotest.string) "no match" None
    (Option.map Signature.name
       (Callstack.topmost_matching sys_pats (stack [ "App!Main" ])));
  check Alcotest.bool "contains_matching" true (Callstack.contains_matching sys_pats s)

let test_callstack_equal_hash () =
  let a = stack [ "x!1"; "y!2" ] and b = stack [ "x!1"; "y!2" ] in
  check Alcotest.bool "equal" true (Callstack.equal a b);
  check Alcotest.int "hash equal" (Callstack.hash a) (Callstack.hash b);
  check Alcotest.bool "differ" false (Callstack.equal a (stack [ "x!1" ]))

(* --- Event --- *)

let mk_event ?(kind = Event.Running) ?(tid = 1) ?(ts = 0) ?(cost = 10)
    ?(wtid = -1) ?(frames = [ "app!f" ]) () =
  { Event.id = 0; kind; stack = stack frames; ts; cost; tid; wtid }

let test_event_end_ts () =
  check Alcotest.int "end_ts" 110 (Event.end_ts (mk_event ~ts:100 ~cost:10 ()))

let test_event_kind_strings () =
  List.iter
    (fun k ->
      check Alcotest.bool "roundtrip" true
        (Event.kind_of_string (Event.kind_to_string k) = Some k))
    [ Event.Running; Event.Wait; Event.Unwait; Event.Hw_service ];
  check Alcotest.bool "unknown" true (Event.kind_of_string "bogus" = None)

(* --- Scenario --- *)

let spec = Scenario.spec ~name:"S" ~tfast:100 ~tslow:200

let inst d = { Scenario.scenario = "S"; tid = 1; t0 = 1_000; t1 = 1_000 + d }

let test_scenario_classify () =
  check Alcotest.bool "fast" true (Scenario.classify spec (inst 99) = Scenario.Fast);
  check Alcotest.bool "boundary tfast is middle" true
    (Scenario.classify spec (inst 100) = Scenario.Middle);
  check Alcotest.bool "boundary tslow is middle" true
    (Scenario.classify spec (inst 200) = Scenario.Middle);
  check Alcotest.bool "slow" true (Scenario.classify spec (inst 201) = Scenario.Slow);
  check Alcotest.int "duration" 150 (Scenario.duration (inst 150))

let test_scenario_spec_validation () =
  Alcotest.check_raises "tfast > tslow"
    (Invalid_argument "Scenario.spec: need 0 < tfast <= tslow") (fun () ->
      ignore (Scenario.spec ~name:"x" ~tfast:10 ~tslow:5));
  Alcotest.check_raises "zero tfast"
    (Invalid_argument "Scenario.spec: need 0 < tfast <= tslow") (fun () ->
      ignore (Scenario.spec ~name:"x" ~tfast:0 ~tslow:5))

(* --- Stream --- *)

let test_stream_sorting () =
  let events =
    [
      mk_event ~ts:50 ~tid:2 ();
      mk_event ~ts:10 ~tid:1 ();
      mk_event ~ts:30 ~tid:1 ();
    ]
  in
  let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[] in
  let ts = Array.map (fun (e : Event.t) -> e.ts) st.Stream.events in
  check (Alcotest.array Alcotest.int) "sorted" [| 10; 30; 50 |] ts;
  Array.iteri
    (fun i (e : Event.t) -> check Alcotest.int "id = index" i e.id)
    st.Stream.events

let test_stream_zero_cost_first () =
  (* A release (unwait, cost 0) and a compute starting at the same instant
     on the same thread must be ordered unwait-first. *)
  let events =
    [
      mk_event ~kind:Event.Running ~ts:100 ~cost:20 ~tid:1 ();
      mk_event ~kind:Event.Unwait ~ts:100 ~cost:0 ~tid:1 ~wtid:2 ();
    ]
  in
  let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[] in
  check Alcotest.bool "unwait first" true
    (Event.is_unwait st.Stream.events.(0) && Event.is_running st.Stream.events.(1))

let test_stream_thread_name () =
  let st = Stream.create ~id:0 ~events:[] ~instances:[] ~threads:[ (3, "UI") ] in
  check Alcotest.string "named" "UI" (Stream.thread_name st 3);
  check Alcotest.string "fallback" "tid9" (Stream.thread_name st 9)

let test_stream_duration () =
  let st =
    Stream.create ~id:0
      ~events:[ mk_event ~ts:100 ~cost:50 (); mk_event ~ts:400 ~cost:100 ~tid:2 () ]
      ~instances:[] ~threads:[]
  in
  check Alcotest.int "span" 400 (Stream.duration st);
  check Alcotest.int "empty" 0
    (Stream.duration (Stream.create ~id:1 ~events:[] ~instances:[] ~threads:[]))

let test_stream_overlapping_window () =
  let events =
    [
      mk_event ~tid:1 ~ts:0 ~cost:100 ();   (* overlaps from before *)
      mk_event ~tid:1 ~ts:150 ~cost:10 ();  (* inside *)
      mk_event ~tid:1 ~ts:400 ~cost:10 ();  (* after *)
      mk_event ~tid:2 ~ts:160 ~cost:5 ();   (* other thread *)
    ]
  in
  let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[] in
  let idx = Stream.index st in
  let got =
    Stream.thread_events_overlapping idx ~tid:1 ~from_ts:50 ~to_ts:300
    |> List.map (fun (e : Event.t) -> e.ts)
  in
  check (Alcotest.list Alcotest.int) "window" [ 0; 150 ] got;
  check (Alcotest.list Alcotest.int) "unknown tid" []
    (Stream.thread_events_overlapping idx ~tid:42 ~from_ts:0 ~to_ts:1_000
    |> List.map (fun (e : Event.t) -> e.ts))

let test_stream_find_waker () =
  let events =
    [
      mk_event ~kind:Event.Wait ~tid:1 ~ts:100 ~cost:50 ();
      mk_event ~kind:Event.Unwait ~tid:2 ~ts:150 ~cost:0 ~wtid:1 ();
      mk_event ~kind:Event.Unwait ~tid:2 ~ts:90 ~cost:0 ~wtid:1 ();
      (* before the wait: must not match *)
      mk_event ~kind:Event.Unwait ~tid:3 ~ts:120 ~cost:0 ~wtid:5 ();
      (* targets another thread *)
    ]
  in
  let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[] in
  let idx = Stream.index st in
  let wait = Array.to_list st.Stream.events |> List.find Event.is_wait in
  match Stream.find_waker idx wait with
  | Some u ->
    check Alcotest.int "waker ts" 150 u.Event.ts;
    check Alcotest.int "waker wtid" 1 u.Event.wtid
  | None -> Alcotest.fail "waker not found"

let test_stream_find_waker_missing () =
  let events = [ mk_event ~kind:Event.Wait ~tid:1 ~ts:100 ~cost:50 () ] in
  let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[] in
  let idx = Stream.index st in
  check Alcotest.bool "no waker" true
    (Stream.find_waker idx st.Stream.events.(0) = None)

(* --- Corpus --- *)

let small_corpus () =
  let i1 = { Scenario.scenario = "A"; tid = 1; t0 = 0; t1 = 100 } in
  let i2 = { Scenario.scenario = "B"; tid = 2; t0 = 0; t1 = 200 } in
  let st1 =
    Stream.create ~id:0
      ~events:[ mk_event ~tid:1 () ]
      ~instances:[ i1 ] ~threads:[ (1, "T1") ]
  in
  let st2 =
    Stream.create ~id:1
      ~events:[ mk_event ~tid:2 () ]
      ~instances:[ i2; { i1 with Scenario.tid = 2 } ]
      ~threads:[ (2, "T2") ]
  in
  Corpus.create ~streams:[ st1; st2 ]
    ~specs:[ Scenario.spec ~name:"A" ~tfast:50 ~tslow:150 ]

let test_corpus_queries () =
  let c = small_corpus () in
  check Alcotest.int "streams" 2 (Corpus.stream_count c);
  check Alcotest.int "instances" 3 (Corpus.instance_count c);
  check (Alcotest.list Alcotest.string) "names" [ "A"; "B" ] (Corpus.scenario_names c);
  check Alcotest.int "instances of A" 2 (List.length (Corpus.instances_of c "A"));
  check Alcotest.bool "spec found" true (Corpus.find_spec c "A" <> None);
  check Alcotest.bool "spec missing" true (Corpus.find_spec c "B" = None);
  check Alcotest.int "total time" 400 (Corpus.total_scenario_time c)

(* --- Codec --- *)

let roundtrip c = Codec.corpus_of_string (Codec.corpus_to_string c)

let corpus_equal (a : Corpus.t) (b : Corpus.t) =
  List.length a.Corpus.streams = List.length b.Corpus.streams
  && List.for_all2
       (fun (x : Stream.t) (y : Stream.t) ->
         x.Stream.id = y.Stream.id
         && x.Stream.instances = y.Stream.instances
         && x.Stream.threads = y.Stream.threads
         && Array.length x.Stream.events = Array.length y.Stream.events
         && Array.for_all2
              (fun (e : Event.t) (f : Event.t) ->
                e.Event.id = f.Event.id && e.Event.kind = f.Event.kind
                && e.Event.ts = f.Event.ts
                && e.Event.cost = f.Event.cost
                && e.Event.tid = f.Event.tid
                && e.Event.wtid = f.Event.wtid
                && Callstack.equal e.Event.stack f.Event.stack)
              x.Stream.events y.Stream.events)
       a.Corpus.streams b.Corpus.streams
  && a.Corpus.specs = b.Corpus.specs

let test_codec_roundtrip () =
  let c = small_corpus () in
  check Alcotest.bool "roundtrip equal" true (corpus_equal c (roundtrip c))

let test_codec_empty_stack () =
  let e = { (mk_event ()) with Event.stack = Callstack.of_list [] } in
  let st = Stream.create ~id:0 ~events:[ e ] ~instances:[] ~threads:[] in
  let c = Corpus.create ~streams:[ st ] ~specs:[] in
  let c' = roundtrip c in
  let e' = (List.hd c'.Corpus.streams).Stream.events.(0) in
  check Alcotest.int "empty stack preserved" 0 (Callstack.depth e'.Event.stack)

let expect_parse_error text =
  match Codec.corpus_of_string text with
  | exception Codec.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_codec_errors () =
  expect_parse_error "";
  expect_parse_error "wrong 1\n";
  expect_parse_error "dptrace 99\n";
  expect_parse_error "dptrace 1\nstream 0\nstream 1\n";
  expect_parse_error "dptrace 1\nevent run 1 0 5 -1 a!b\n";
  (* outside stream *)
  expect_parse_error "dptrace 1\nstream 0\nevent bogus 1 0 5 -1 a!b\nend\n";
  expect_parse_error "dptrace 1\nstream 0\nevent run 1 0 -5 -1 a!b\nend\n";
  (* negative cost *)
  expect_parse_error "dptrace 1\nstream 0\ninstance S 1 100 50\nend\n";
  (* t1 < t0 *)
  expect_parse_error "dptrace 1\nstream 0\n";
  (* unterminated *)
  expect_parse_error "dptrace 1\nfrobnicate\n";
  expect_parse_error "dptrace 1\nspec S 100 50\n" (* tfast > tslow *)

(* Fuzz safety: mutating a valid corpus text must either parse or raise
   Parse_error — never any other exception. *)
let prop_codec_mutation_safety =
  QCheck.Test.make ~name:"mutated corpus text never crashes" ~count:150
    QCheck.(pair small_int (int_range 0 255))
    (fun (pos_seed, byte) ->
      let base = Codec.corpus_to_string (small_corpus ()) in
      let b = Bytes.of_string base in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      match Codec.corpus_of_string (Bytes.to_string b) with
      | _ -> true
      | exception Codec.Parse_error _ -> true)

let test_codec_rejects_spacey_names () =
  let st =
    Stream.create ~id:0 ~events:[] ~instances:[] ~threads:[ (1, "has space") ]
  in
  let c = Corpus.create ~streams:[ st ] ~specs:[] in
  (match Codec.corpus_to_string c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  (* The binary codec handles them fine. *)
  let roundtripped = Dptrace.Codec_binary.decode (Dptrace.Codec_binary.encode c) in
  check Alcotest.string "binary keeps the name" "has space"
    (Stream.thread_name (List.hd roundtripped.Corpus.streams) 1)

let test_codec_error_line () =
  match Codec.corpus_of_string "dptrace 1\nstream 0\njunk here\n" with
  | exception Codec.Parse_error { line; _ } -> check Alcotest.int "line" 3 line
  | _ -> Alcotest.fail "expected Parse_error"

(* --- Validate --- *)

let test_validate_clean () =
  let w = mk_event ~kind:Event.Wait ~tid:1 ~ts:0 ~cost:50 () in
  let u = mk_event ~kind:Event.Unwait ~tid:2 ~ts:50 ~cost:0 ~wtid:1 () in
  let st = Stream.create ~id:0 ~events:[ w; u ] ~instances:[] ~threads:[] in
  check (Alcotest.list Alcotest.string) "no violations" []
    (List.map (fun v -> v.Validate.message) (Validate.check st))

let test_validate_unpaired_wait () =
  let w = mk_event ~kind:Event.Wait ~tid:1 ~ts:0 ~cost:50 () in
  let st = Stream.create ~id:0 ~events:[ w ] ~instances:[] ~threads:[] in
  check Alcotest.bool "caught" true
    (List.exists
       (fun v -> v.Validate.message = "wait event with no pairing unwait")
       (Validate.check st))

let test_validate_overlap () =
  let a = mk_event ~tid:1 ~ts:0 ~cost:100 () in
  let b = mk_event ~tid:1 ~ts:50 ~cost:10 () in
  let st = Stream.create ~id:0 ~events:[ a; b ] ~instances:[] ~threads:[] in
  check Alcotest.bool "overlap caught" true
    (List.exists
       (fun v ->
         String.length v.Validate.message > 6
         && String.sub v.Validate.message 0 6 = "thread")
       (Validate.check st))

let test_validate_bad_unwait () =
  let u = mk_event ~kind:Event.Unwait ~tid:1 ~ts:0 ~cost:5 ~wtid:1 () in
  let st = Stream.create ~id:0 ~events:[ u ] ~instances:[] ~threads:[] in
  let messages = List.map (fun v -> v.Validate.message) (Validate.check st) in
  check Alcotest.bool "non-zero cost caught" true
    (List.mem "unwait with non-zero cost" messages);
  check Alcotest.bool "self target caught" true
    (List.mem "unwait targets itself" messages)

let test_validate_wtid_on_running () =
  let e = mk_event ~kind:Event.Running ~tid:1 ~wtid:2 () in
  let st = Stream.create ~id:0 ~events:[ e ] ~instances:[] ~threads:[] in
  check Alcotest.bool "caught" true
    (List.exists
       (fun v -> v.Validate.message = "wtid set on non-unwait event")
       (Validate.check st))

let test_validate_instance_without_events () =
  let st =
    Stream.create ~id:0 ~events:[]
      ~instances:[ { Scenario.scenario = "S"; tid = 7; t0 = 0; t1 = 10 } ]
      ~threads:[]
  in
  check Alcotest.bool "caught" true (Validate.check st <> [])

(* Property: streams built from per-thread sequential spans validate. *)
let prop_clean_streams_validate =
  QCheck.Test.make ~name:"constructed clean streams validate" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (pair (int_range 1 4) (int_range 1 50)))
    (fun specs ->
      let next_ts = Hashtbl.create 4 in
      let events =
        List.map
          (fun (tid, dur) ->
            let t0 = Option.value ~default:0 (Hashtbl.find_opt next_ts tid) in
            Hashtbl.replace next_ts tid (t0 + dur);
            mk_event ~tid ~ts:t0 ~cost:dur ())
          specs
      in
      let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[] in
      Validate.is_valid st)

(* --- timeline --- *)

let test_timeline_render () =
  let case = Dpworkload.Motivating_case.build () in
  let st = case.Dpworkload.Motivating_case.stream in
  let text =
    Dptrace.Timeline.render_instance st
      case.Dpworkload.Motivating_case.browser_instance
  in
  let lines = String.split_on_char '\n' text in
  (* Header + one row per active thread + legend. *)
  check Alcotest.bool "enough rows" true (List.length lines > 8);
  let row name =
    List.find
      (fun l ->
        String.length l > String.length name && String.sub l 0 (String.length name) = name)
      lines
  in
  let ui = row "Browser.UI" in
  check Alcotest.bool "UI mostly waits" true
    (String.exists (fun c -> c = '.') ui);
  let disk = row "Disk0" in
  check Alcotest.bool "disk serves" true (String.exists (fun c -> c = '~') disk);
  (* All rows equal width between the pipes. *)
  let widths =
    List.filter_map
      (fun l ->
        match String.index_opt l '|' with
        | Some a -> (
          match String.rindex_opt l '|' with
          | Some b when b > a -> Some (b - a)
          | _ -> None)
        | None -> None)
      lines
  in
  check Alcotest.bool "uniform width" true
    (List.length (List.sort_uniq compare widths) <= 1)

let test_timeline_empty_and_window () =
  let empty = Stream.create ~id:0 ~events:[] ~instances:[] ~threads:[] in
  check Alcotest.string "empty stream" "(empty stream)\n"
    (Dptrace.Timeline.render empty);
  (* Clipping to a window excludes threads without events there. *)
  let events =
    [ mk_event ~tid:1 ~ts:0 ~cost:10 (); mk_event ~tid:2 ~ts:1_000 ~cost:10 () ]
  in
  let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[ (1, "early"); (2, "late") ] in
  let text = Dptrace.Timeline.render ~from_ts:0 ~to_ts:100 st in
  check Alcotest.bool "early present" true
    (List.exists
       (fun l -> String.length l >= 5 && String.sub l 0 5 = "early")
       (String.split_on_char '\n' text));
  check Alcotest.bool "late clipped" false
    (List.exists
       (fun l -> String.length l >= 4 && String.sub l 0 4 = "late")
       (String.split_on_char '\n' text))

(* --- corpus statistics --- *)

let test_corpus_stats () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.02) in
  let s = Dptrace.Corpus_stats.compute corpus in
  check Alcotest.int "streams agree" (Corpus.stream_count corpus)
    s.Dptrace.Corpus_stats.streams;
  check Alcotest.int "instances agree" (Corpus.instance_count corpus)
    s.Dptrace.Corpus_stats.instances;
  let k = s.Dptrace.Corpus_stats.kinds in
  check Alcotest.int "kinds partition events" s.Dptrace.Corpus_stats.events
    (k.Dptrace.Corpus_stats.running + k.Dptrace.Corpus_stats.waits
    + k.Dptrace.Corpus_stats.unwaits
    + k.Dptrace.Corpus_stats.hw_services);
  (* Every wait has an unwait in simulator output. *)
  check Alcotest.bool "waits <= unwaits" true
    (k.Dptrace.Corpus_stats.waits <= k.Dptrace.Corpus_stats.unwaits);
  check Alcotest.bool "signatures counted" true
    (s.Dptrace.Corpus_stats.distinct_signatures > 20);
  check Alcotest.bool "depth sane" true
    (s.Dptrace.Corpus_stats.mean_stack_depth > 1.0
    && s.Dptrace.Corpus_stats.max_stack_depth >= 5);
  (* Per-scenario rows cover every scenario, sorted by volume. *)
  check Alcotest.int "all scenarios present"
    (List.length (Corpus.scenario_names corpus))
    (List.length s.Dptrace.Corpus_stats.per_scenario);
  let rec sorted = function
    | (a : Dptrace.Corpus_stats.scenario_stats)
      :: (b :: _ as rest) ->
      a.Dptrace.Corpus_stats.instances >= b.Dptrace.Corpus_stats.instances
      && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted by volume" true (sorted s.Dptrace.Corpus_stats.per_scenario);
  check Alcotest.bool "renders" true
    (String.length (Dptrace.Corpus_stats.render s) > 200)

let test_corpus_stats_empty () =
  let s = Dptrace.Corpus_stats.compute (Corpus.create ~streams:[] ~specs:[]) in
  check Alcotest.int "zeroes" 0
    (s.Dptrace.Corpus_stats.streams + s.Dptrace.Corpus_stats.events);
  check Alcotest.bool "still renders" true
    (String.length (Dptrace.Corpus_stats.render s) > 50)

let () =
  Alcotest.run "dptrace"
    [
      ( "signature",
        [
          Alcotest.test_case "parts" `Quick test_signature_parts;
          Alcotest.test_case "dummy" `Quick test_signature_dummy;
          Alcotest.test_case "interning" `Quick test_signature_interning;
          Alcotest.test_case "make" `Quick test_signature_make;
          Alcotest.test_case "matches" `Quick test_signature_matches;
        ] );
      ( "callstack",
        [
          Alcotest.test_case "basics" `Quick test_callstack_basics;
          Alcotest.test_case "push" `Quick test_callstack_push;
          Alcotest.test_case "topmost_matching" `Quick test_callstack_topmost_matching;
          Alcotest.test_case "equal/hash" `Quick test_callstack_equal_hash;
        ] );
      ( "event",
        [
          Alcotest.test_case "end_ts" `Quick test_event_end_ts;
          Alcotest.test_case "kind strings" `Quick test_event_kind_strings;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "classify" `Quick test_scenario_classify;
          Alcotest.test_case "spec validation" `Quick test_scenario_spec_validation;
        ] );
      ( "stream",
        [
          Alcotest.test_case "sorting" `Quick test_stream_sorting;
          Alcotest.test_case "zero-cost first" `Quick test_stream_zero_cost_first;
          Alcotest.test_case "thread names" `Quick test_stream_thread_name;
          Alcotest.test_case "duration" `Quick test_stream_duration;
          Alcotest.test_case "overlap window" `Quick test_stream_overlapping_window;
          Alcotest.test_case "find_waker" `Quick test_stream_find_waker;
          Alcotest.test_case "find_waker missing" `Quick test_stream_find_waker_missing;
        ] );
      ("corpus", [ Alcotest.test_case "queries" `Quick test_corpus_queries ]);
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "empty stack" `Quick test_codec_empty_stack;
          Alcotest.test_case "parse errors" `Quick test_codec_errors;
          Alcotest.test_case "error line numbers" `Quick test_codec_error_line;
          Alcotest.test_case "spacey names rejected" `Quick
            test_codec_rejects_spacey_names;
          qcheck prop_codec_mutation_safety;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "figure 1 rendering" `Quick test_timeline_render;
          Alcotest.test_case "empty/window" `Quick test_timeline_empty_and_window;
        ] );
      ( "stats",
        [
          Alcotest.test_case "generated corpus" `Quick test_corpus_stats;
          Alcotest.test_case "empty corpus" `Quick test_corpus_stats_empty;
        ] );
      ( "validate",
        [
          Alcotest.test_case "clean" `Quick test_validate_clean;
          Alcotest.test_case "unpaired wait" `Quick test_validate_unpaired_wait;
          Alcotest.test_case "overlap" `Quick test_validate_overlap;
          Alcotest.test_case "bad unwait" `Quick test_validate_bad_unwait;
          Alcotest.test_case "wtid on running" `Quick test_validate_wtid_on_running;
          Alcotest.test_case "instance without events" `Quick
            test_validate_instance_without_events;
          qcheck prop_clean_streams_validate;
        ] );
    ]
