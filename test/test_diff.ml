(* Dedicated tests for pattern-set differencing: the full ordering
   contract, the [min_support] claim floor, the JSON twin, and a QCheck
   round-trip showing every input tuple surfaces exactly once. *)

module Time = Dputil.Time
module Tuple = Dpcore.Tuple
module Mining = Dpcore.Mining
module Diff = Dpcore.Diff

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let sig_ = Dptrace.Signature.of_string

let tuple w = Tuple.make ~waits:(List.map sig_ w) ~unwaits:[] ~runnings:[]

let pattern ?max_single ~w ~cost ~count () =
  let max_single = Option.value max_single ~default:cost in
  Mining.make_pattern ~tuple:(tuple w) ~cost ~count ~max_single

let entry_of entries w =
  List.find (fun e -> Tuple.equal e.Diff.tuple (tuple w)) entries

(* --- ordering: severity classes in order, factors descending --- *)

let test_ordering () =
  let before =
    [
      pattern ~w:[ "reg2.sys!F" ] ~cost:(Time.ms 100) ~count:1 ();
      pattern ~w:[ "reg6.sys!F" ] ~cost:(Time.ms 100) ~count:1 ();
      pattern ~w:[ "gone.sys!F" ] ~cost:(Time.ms 50) ~count:1 ();
      pattern ~w:[ "imp3.sys!F" ] ~cost:(Time.ms 300) ~count:1 ();
      pattern ~w:[ "imp9.sys!F" ] ~cost:(Time.ms 900) ~count:1 ();
      pattern ~w:[ "same.sys!F" ] ~cost:(Time.ms 100) ~count:1 ();
    ]
  in
  let after =
    [
      pattern ~w:[ "reg2.sys!F" ] ~cost:(Time.ms 200) ~count:1 ();
      pattern ~w:[ "reg6.sys!F" ] ~cost:(Time.ms 600) ~count:1 ();
      pattern ~w:[ "new.sys!F" ] ~cost:(Time.ms 10) ~count:1 ();
      pattern ~w:[ "imp3.sys!F" ] ~cost:(Time.ms 100) ~count:1 ();
      pattern ~w:[ "imp9.sys!F" ] ~cost:(Time.ms 100) ~count:1 ();
      pattern ~w:[ "same.sys!F" ] ~cost:(Time.ms 100) ~count:1 ();
    ]
  in
  let entries = Diff.compare_patterns ~before ~after () in
  let kinds = List.map (fun e -> Diff.change_kind e.Diff.change) entries in
  check
    (Alcotest.list Alcotest.string)
    "severity order"
    [
      "regressed"; "regressed"; "appeared"; "disappeared"; "improved";
      "improved"; "stable";
    ]
    kinds;
  (* Largest factor first within each factor-carrying class. *)
  (match (List.nth entries 0).Diff.change with
  | Diff.Regressed f -> check (Alcotest.float 1e-6) "worst first" 6.0 f
  | _ -> Alcotest.fail "expected Regressed");
  match (List.nth entries 4).Diff.change with
  | Diff.Improved f -> check (Alcotest.float 1e-6) "best first" 9.0 f
  | _ -> Alcotest.fail "expected Improved"

let test_tie_break_by_tuple () =
  (* Two appearances with equal everything: ties order by content. *)
  let after =
    [
      pattern ~w:[ "b.sys!F" ] ~cost:(Time.ms 10) ~count:1 ();
      pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 10) ~count:1 ();
    ]
  in
  let entries = Diff.compare_patterns ~before:[] ~after () in
  let ts = List.map (fun e -> e.Diff.tuple) entries in
  check Alcotest.bool "tuple order" true
    (ts = List.sort Tuple.compare ts)

(* --- min_support: the claiming side carries the floor --- *)

let test_min_support () =
  let before =
    [
      pattern ~w:[ "worse.sys!F" ] ~cost:(Time.ms 100) ~count:10 ();
      pattern ~w:[ "gone_small.sys!F" ] ~cost:(Time.ms 100) ~count:2 ();
      pattern ~w:[ "gone_big.sys!F" ] ~cost:(Time.ms 100) ~count:5 ();
      pattern ~w:[ "better.sys!F" ] ~cost:(Time.ms 900) ~count:10 ();
    ]
  in
  let after =
    [
      (* 10x avg-cost growth but only 2 supporting instances. *)
      pattern ~w:[ "worse.sys!F" ] ~cost:(Time.ms 200) ~count:2 ();
      pattern ~w:[ "new_small.sys!F" ] ~cost:(Time.ms 500) ~count:2 ();
      pattern ~w:[ "new_big.sys!F" ] ~cost:(Time.ms 500) ~count:3 ();
      pattern ~w:[ "better.sys!F" ] ~cost:(Time.ms 100) ~count:2 ();
    ]
  in
  let entries = Diff.compare_patterns ~min_support:3 ~before ~after () in
  let kind w = Diff.change_kind (entry_of entries w).Diff.change in
  check Alcotest.string "sub-floor regression is stable" "stable"
    (kind [ "worse.sys!F" ]);
  check Alcotest.string "sub-floor appearance is stable" "stable"
    (kind [ "new_small.sys!F" ]);
  check Alcotest.string "supported appearance claims" "appeared"
    (kind [ "new_big.sys!F" ]);
  check Alcotest.string "sub-floor improvement is stable" "stable"
    (kind [ "better.sys!F" ]);
  (* Disappearance is a claim about the BEFORE side. *)
  check Alcotest.string "sub-floor disappearance is stable" "stable"
    (kind [ "gone_small.sys!F" ]);
  check Alcotest.string "supported disappearance claims" "disappeared"
    (kind [ "gone_big.sys!F" ])

let test_min_support_default_off () =
  let after = [ pattern ~w:[ "once.sys!F" ] ~cost:(Time.ms 1) ~count:1 () ] in
  let entries = Diff.compare_patterns ~before:[] ~after () in
  check Alcotest.string "floor of 1 keeps singletons" "appeared"
    (Diff.change_kind (List.hd entries).Diff.change)

(* --- JSON twin --- *)

let test_json_document () =
  let before = [ pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 10) ~count:2 () ] in
  let after =
    [
      pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 100) ~count:4 ();
      pattern ~w:[ "b.sys!F" ] ~cost:(Time.ms 5) ~count:3 ();
    ]
  in
  let entries = Diff.compare_patterns ~before ~after () in
  let doc =
    Dputil.Jsonw.to_string
      (Diff.json_document ~scenario:"S" ~threshold:1.5 ~min_support:1 entries)
  in
  (* Byte-determinism: the writer has one rendering. *)
  check Alcotest.string "deterministic" doc
    (Dputil.Jsonw.to_string
       (Diff.json_document ~scenario:"S" ~threshold:1.5 ~min_support:1
          entries));
  match Tjson.parse doc with
  | Tjson.Obj fields ->
    check Alcotest.string "tool" "driveperf"
      (match List.assoc "tool" fields with Tjson.Str s -> s | _ -> "?");
    check Alcotest.string "kind" "diff"
      (match List.assoc "kind" fields with Tjson.Str s -> s | _ -> "?");
    (match List.assoc "entries" fields with
    | Tjson.Arr (Tjson.Obj e :: _) ->
      (* First entry is the regression; factor present, sides populated. *)
      check Alcotest.string "entry change" "regressed"
        (match List.assoc "change" e with Tjson.Str s -> s | _ -> "?");
      (match List.assoc "factor" e with
      | Tjson.Num f -> check (Alcotest.float 1e-6) "factor" 5.0 f
      | _ -> Alcotest.fail "factor should be a number");
      (match List.assoc "before" e with
      | Tjson.Obj b ->
        check Alcotest.bool "before count" true
          (List.assoc "count" b = Tjson.Num 2.0)
      | _ -> Alcotest.fail "before should be an object")
    | _ -> Alcotest.fail "entries should lead with the regression");
    (match List.assoc "summary" fields with
    | Tjson.Obj s ->
      check Alcotest.bool "summary regressed" true
        (List.assoc "regressed" s = Tjson.Num 1.0)
    | _ -> Alcotest.fail "summary should be an object")
  | _ -> Alcotest.fail "document should be an object"

let test_json_appeared_sides () =
  let after = [ pattern ~w:[ "n.sys!F" ] ~cost:(Time.ms 9) ~count:3 () ] in
  let entries = Diff.compare_patterns ~before:[] ~after () in
  match Tjson.parse (Dputil.Jsonw.to_string (Diff.json_entry (List.hd entries))) with
  | Tjson.Obj e ->
    check Alcotest.bool "before null" true (List.assoc "before" e = Tjson.Null);
    check Alcotest.bool "factor null" true (List.assoc "factor" e = Tjson.Null);
    (match List.assoc "tuple" e with
    | Tjson.Obj t -> (
      match List.assoc "waits" t with
      | Tjson.Arr [ Tjson.Str "n.sys!F" ] -> ()
      | _ -> Alcotest.fail "tuple waits should carry the signature name")
    | _ -> Alcotest.fail "tuple should be an object")
  | _ -> Alcotest.fail "entry should be an object"

(* --- QCheck: membership round-trip --- *)

let arb_patterns =
  let open QCheck in
  let arb_side =
    list_of_size (Gen.int_bound 12)
      (triple (int_bound 19) (int_range 1 1_000_000) (int_range 1 50))
  in
  (* Distinct tuples per side: keep the first occurrence of each id. *)
  let dedup side =
    List.fold_left
      (fun acc (id, cost, count) ->
        let w = [ Printf.sprintf "m%d.sys!F" id ] in
        if List.exists (fun (w', _, _) -> w' = w) acc then acc
        else (w, cost, count) :: acc)
      [] side
    |> List.rev_map (fun (w, cost, count) ->
           pattern ~w ~cost:(Time.us cost) ~count ())
  in
  pair arb_side arb_side |> map (fun (b, a) -> (dedup b, dedup a))

let prop_membership_round_trip =
  QCheck.Test.make ~count:200 ~name:"diff covers each tuple exactly once"
    arb_patterns (fun (before, after) ->
      let entries = Diff.compare_patterns ~min_support:2 ~before ~after () in
      let find side (e : Diff.entry) =
        List.find_opt (fun (p : Mining.pattern) ->
            Tuple.equal p.Mining.tuple e.Diff.tuple)
          side
      in
      List.length entries
      = List.length
          (List.sort_uniq Tuple.compare
             (List.map (fun (p : Mining.pattern) -> p.Mining.tuple)
                (before @ after)))
      && List.for_all
           (fun (e : Diff.entry) ->
             (* The sides round-trip to the input lists... *)
             e.Diff.before = find before e)
           entries
      && List.for_all
           (fun (e : Diff.entry) -> e.Diff.after = find after e)
           entries
      && List.for_all
           (fun (e : Diff.entry) ->
             (* ...and the classification is sane for the membership. *)
             match (e.Diff.before, e.Diff.after, e.Diff.change) with
             | None, None, _ -> false
             | None, Some _, (Diff.Appeared | Diff.Stable) -> true
             | Some _, None, (Diff.Disappeared | Diff.Stable) -> true
             | Some _, Some _, (Diff.Regressed _ | Diff.Improved _ | Diff.Stable)
               ->
               true
             | _ -> false)
           entries)

let () =
  Alcotest.run "diff"
    [
      ( "ordering",
        [
          Alcotest.test_case "severity classes and factors" `Quick
            test_ordering;
          Alcotest.test_case "ties break by tuple content" `Quick
            test_tie_break_by_tuple;
        ] );
      ( "min_support",
        [
          Alcotest.test_case "claim-side floor" `Quick test_min_support;
          Alcotest.test_case "default floor keeps singletons" `Quick
            test_min_support_default_off;
        ] );
      ( "json",
        [
          Alcotest.test_case "document shape and determinism" `Quick
            test_json_document;
          Alcotest.test_case "appeared entry nulls" `Quick
            test_json_appeared_sides;
        ] );
      ("properties", [ qcheck prop_membership_round_trip ]);
    ]
