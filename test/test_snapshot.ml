(* Tests for the incremental snapshot cache: cached re-analysis must be
   bit-identical to from-scratch analysis in every cache state (cold,
   warm, delta, corrupted), the config fingerprint must isolate
   configurations, and damage must degrade to misses, never errors. *)

module Corpus = Dptrace.Corpus
module Corpus_gen = Dpworkload.Corpus_gen
module Pipeline = Dpcore.Pipeline
module Snapshot = Dpcore.Snapshot
module Impact = Dpcore.Impact
module Report = Dpcore.Report

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let components = Dpcore.Component.drivers

let gen ?(seed = 42) scale =
  Corpus_gen.generate { Corpus_gen.default_config with seed; scale }

let with_prov on f =
  let was = Dpcore.Provenance.enabled () in
  if on then Dpcore.Provenance.enable () else Dpcore.Provenance.disable ();
  Fun.protect
    ~finally:(fun () ->
      if was then Dpcore.Provenance.enable ()
      else Dpcore.Provenance.disable ())
    f

(* Fresh directory per use, under the test sandbox cwd. *)
let dir_ctr = ref 0

let fresh_dir () =
  incr dir_ctr;
  let dir = Printf.sprintf "snapcache_%d" !dir_ctr in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  dir

let open_snap ?pool ~dir corpus =
  let fp =
    Snapshot.fingerprint ~components ~specs:corpus.Corpus.specs
      ~k:Dpcore.Mining.default_k ()
  in
  let snap = Snapshot.create ~dir ~fingerprint:fp () in
  Snapshot.ensure ?pool snap components corpus;
  snap

(* The full analyst surface rendered to one string: headline impact with
   provenance, per-module rows, and every scenario's classification, AWGs
   (via mined patterns and witnesses) and coverages. Comparing these
   strings compares everything report --json emits. *)
let fresh_doc ?pool corpus =
  let impact, impact_prov = Pipeline.run_impact_prov ?pool components corpus in
  let graphs =
    Pipeline.build_graphs ?pool corpus (Corpus.all_instances corpus)
  in
  let modules = Impact.by_module components graphs in
  let named = Pipeline.run_all ?pool components corpus in
  Dputil.Jsonw.to_string
    (Report.Json.document ~impact ~impact_prov ~modules ~scenarios:named ())

let snap_doc ?pool snap corpus =
  let impact, impact_prov = Pipeline.run_impact_prov_snap snap corpus in
  let modules = Pipeline.modules_snap snap corpus in
  let named = Pipeline.run_all_snap ?pool snap corpus in
  Dputil.Jsonw.to_string
    (Report.Json.document ~impact ~impact_prov ~modules ~scenarios:named ())

let per_scenario_str l =
  String.concat "\n"
    (List.map
       (fun (n, r) -> Format.asprintf "%s: %a" n Impact.pp r)
       l)

let check_identical ?pool ~msg snap corpus =
  check Alcotest.string (msg ^ ": json document") (fresh_doc ?pool corpus)
    (snap_doc ?pool snap corpus);
  check Alcotest.string
    (msg ^ ": per-scenario impact")
    (per_scenario_str (Pipeline.impact_per_scenario ?pool components corpus))
    (per_scenario_str (Pipeline.impact_per_scenario_snap snap corpus))

(* --- stream identity --- *)

let test_stream_key_stable () =
  let corpus = gen 0.02 in
  let keys = List.map Dptrace.Codec_v2.stream_key corpus.Corpus.streams in
  let path = "snapkey_corpus.dpf" in
  Dptrace.Codec_v2.save path corpus;
  let loaded, _report = Dptrace.Codec_v2.load ~mode:`Strict path in
  let keys' = List.map Dptrace.Codec_v2.stream_key loaded.Corpus.streams in
  check Alcotest.(list string) "keys survive encode/decode" keys keys';
  let distinct = List.sort_uniq compare keys in
  check Alcotest.int "keys are distinct across streams"
    (List.length keys) (List.length distinct)

(* --- cold / warm / delta identity --- *)

let test_cold_and_warm_identical () =
  let corpus = gen 0.05 in
  let dir = fresh_dir () in
  let cold = open_snap ~dir corpus in
  check_identical ~msg:"cold" cold corpus;
  let stats = Snapshot.stats cold in
  check Alcotest.int "cold: no hits" 0 stats.Snapshot.s_hits;
  Snapshot.save cold;
  let warm = open_snap ~dir corpus in
  check_identical ~msg:"warm" warm corpus;
  let stats = Snapshot.stats warm in
  check Alcotest.int "warm: every stream hits"
    (List.length corpus.Corpus.streams)
    stats.Snapshot.s_hits;
  check Alcotest.int "warm: no misses" 0 stats.Snapshot.s_misses

let test_append_delta_identical () =
  let full = gen 0.05 in
  let n = List.length full.Corpus.streams in
  let prefix =
    Corpus.create
      ~streams:(List.filteri (fun i _ -> i < n - 3) full.Corpus.streams)
      ~specs:full.Corpus.specs
  in
  let dir = fresh_dir () in
  let snap = open_snap ~dir prefix in
  Snapshot.save snap;
  (* Re-analysis over the grown corpus: only the appended streams miss. *)
  let snap = open_snap ~dir full in
  let stats = Snapshot.stats snap in
  check Alcotest.int "delta: prefix hits" (n - 3) stats.Snapshot.s_hits;
  check Alcotest.int "delta: appended streams miss" 3 stats.Snapshot.s_misses;
  check_identical ~msg:"delta" snap full

let test_prov_identical () =
  with_prov true @@ fun () ->
  let corpus = gen 0.04 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  check_identical ~msg:"prov cold" snap corpus;
  Snapshot.save snap;
  let warm = open_snap ~dir corpus in
  check_identical ~msg:"prov warm" warm corpus

let test_pooled_identical () =
  Dppar.Pool.with_pool ~domains:4 @@ fun pool ->
  let corpus = gen 0.05 in
  let dir = fresh_dir () in
  (* Misses analysed across 4 domains; compared against the sequential
     from-scratch pipeline and a sequentially-ensured snapshot. *)
  let pooled = open_snap ~pool ~dir corpus in
  check_identical ~msg:"pooled vs sequential-fresh" pooled corpus;
  check Alcotest.string "pooled ensure = sequential ensure"
    (snap_doc (open_snap ~dir:(fresh_dir ()) corpus) corpus)
    (snap_doc ~pool pooled corpus)

(* Scenario mining records: a warm run re-mines nothing; appending one
   stream re-mines only the scenarios that stream contains. *)
let test_mining_cache_reuse () =
  let full = gen 0.05 in
  let n = List.length full.Corpus.streams in
  let has_spec name =
    List.exists
      (fun (s : Dptrace.Scenario.spec) -> s.Dptrace.Scenario.name = name)
      full.Corpus.specs
  in
  let mined_scenarios corpus =
    List.filter has_spec (Corpus.scenario_names corpus)
  in
  let dir = fresh_dir () in
  let cold = open_snap ~dir full in
  ignore (snap_doc cold full);
  let stats = Snapshot.stats cold in
  check Alcotest.int "cold: no mining hits" 0 stats.Snapshot.s_mining_hits;
  check Alcotest.int "cold: every scenario mined"
    (List.length (mined_scenarios full))
    stats.Snapshot.s_mining_misses;
  Snapshot.save cold;
  let warm = open_snap ~dir full in
  ignore (snap_doc warm full);
  let stats = Snapshot.stats warm in
  check Alcotest.int "warm: nothing re-mined" 0 stats.Snapshot.s_mining_misses;
  check Alcotest.int "warm: every scenario reused"
    (List.length (mined_scenarios full))
    stats.Snapshot.s_mining_hits;
  (* Delta: cache the n-1-stream prefix, then analyse the full corpus. *)
  let prefix =
    Corpus.create
      ~streams:(List.filteri (fun i _ -> i < n - 1) full.Corpus.streams)
      ~specs:full.Corpus.specs
  in
  let appended = List.nth full.Corpus.streams (n - 1) in
  let dir = fresh_dir () in
  let snap = open_snap ~dir prefix in
  ignore (snap_doc snap prefix);
  Snapshot.save snap;
  let snap = open_snap ~dir full in
  ignore (snap_doc snap full);
  let stats = Snapshot.stats snap in
  let touched =
    List.sort_uniq compare
      (List.filter_map
         (fun (i : Dptrace.Scenario.instance) ->
           if has_spec i.Dptrace.Scenario.scenario then
             Some i.Dptrace.Scenario.scenario
           else None)
         appended.Dptrace.Stream.instances)
  in
  check Alcotest.bool "delta: only touched scenarios re-mined" true
    (stats.Snapshot.s_mining_misses <= List.length touched);
  check Alcotest.int "delta: the rest reused"
    (List.length (mined_scenarios full) - stats.Snapshot.s_mining_misses)
    stats.Snapshot.s_mining_hits

(* --- robustness --- *)

let test_corrupt_cache_recovers () =
  let corpus = gen 0.04 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  Snapshot.save snap;
  let path =
    match Snapshot.list_files dir with
    | [ p ] -> p
    | l -> Alcotest.failf "expected one cache file, got %d" (List.length l)
  in
  (* Flip bytes through the body: some entries fail their checksum. *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let step = max 1 (Bytes.length b / 37) in
  let i = ref 64 in
  while !i < Bytes.length b do
    Bytes.set b !i (Char.chr (Char.code (Bytes.get b !i) lxor 0xff));
    i := !i + step
  done;
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  let snap = open_snap ~dir corpus in
  let stats = Snapshot.stats snap in
  check Alcotest.bool "some entries were dropped or lost" true
    (stats.Snapshot.s_dropped > 0
    || stats.Snapshot.s_loaded < List.length corpus.Corpus.streams);
  check Alcotest.bool "damage becomes misses" true
    (stats.Snapshot.s_misses > 0);
  check_identical ~msg:"after corruption" snap corpus;
  (* And the file itself is verifiable tooling-side. *)
  let fi = Snapshot.inspect path in
  check Alcotest.bool "inspect sees the damage" true
    (fi.Snapshot.fi_corrupt > 0 || fi.Snapshot.fi_entries < List.length corpus.Corpus.streams)

let test_truncated_and_garbage_files () =
  let corpus = gen 0.02 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  Snapshot.save snap;
  let path = List.hd (Snapshot.list_files dir) in
  let data = In_channel.with_open_bin path In_channel.input_all in
  (* Truncated file: loads a prefix of entries, rest miss. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub data 0 (String.length data / 2)));
  let snap = open_snap ~dir corpus in
  check_identical ~msg:"truncated" snap corpus;
  (* Garbage file: everything misses, nothing raises. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "this is not a snapshot");
  let snap = open_snap ~dir corpus in
  let stats = Snapshot.stats snap in
  check Alcotest.int "garbage loads nothing" 0 stats.Snapshot.s_loaded;
  check_identical ~msg:"garbage" snap corpus

let test_fingerprint_isolation () =
  let specs = [ Dptrace.Scenario.spec ~name:"S" ~tfast:100 ~tslow:500 ] in
  let fp ~k () = Snapshot.fingerprint ~components ~specs ~k () in
  let base = fp ~k:5 () in
  check Alcotest.bool "k changes the fingerprint" true (base <> fp ~k:6 ());
  let other =
    Snapshot.fingerprint
      ~components:(Dpcore.Component.of_patterns [ "net.*" ])
      ~specs ~k:5 ()
  in
  check Alcotest.bool "components change the fingerprint" true (base <> other);
  let specs' = [ Dptrace.Scenario.spec ~name:"S" ~tfast:100 ~tslow:501 ] in
  check Alcotest.bool "specs change the fingerprint" true
    (base <> Snapshot.fingerprint ~components ~specs:specs' ~k:5 ());
  with_prov true (fun () ->
      check Alcotest.bool "provenance switch changes the fingerprint" true
        (base <> fp ~k:5 ()));
  (* A cache saved under one fingerprint is invisible to another. *)
  let corpus = gen 0.02 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  Snapshot.save snap;
  let alien = Snapshot.create ~dir ~fingerprint:"0000000000000000" () in
  check Alcotest.int "other fingerprint loads nothing" 0
    (Snapshot.stats alien).Snapshot.s_loaded

let test_stale_entries_counted () =
  let full = gen 0.03 in
  let n = List.length full.Corpus.streams in
  let dir = fresh_dir () in
  let snap = open_snap ~dir full in
  Snapshot.save snap;
  let shrunk =
    Corpus.create
      ~streams:(List.filteri (fun i _ -> i < n - 2) full.Corpus.streams)
      ~specs:full.Corpus.specs
  in
  let snap = open_snap ~dir shrunk in
  let stats = Snapshot.stats snap in
  check Alcotest.int "removed streams are stale" 2 stats.Snapshot.s_stale;
  check Alcotest.int "remaining streams hit" (n - 2) stats.Snapshot.s_hits

(* --- gc --- *)

let test_gc_keeps_newest () =
  let dir = fresh_dir () in
  let corpus = gen 0.02 in
  List.iter
    (fun fingerprint ->
      let snap = Snapshot.create ~dir ~fingerprint () in
      Snapshot.ensure snap components corpus;
      Snapshot.save snap)
    [ "aaaaaaaaaaaaaaaa"; "bbbbbbbbbbbbbbbb"; "cccccccccccccccc" ];
  check Alcotest.int "three files" 3 (List.length (Snapshot.list_files dir));
  let removed, reclaimed = Snapshot.gc ~keep:1 dir in
  check Alcotest.int "two removed" 2 removed;
  check Alcotest.bool "bytes reclaimed" true (reclaimed > 0);
  check Alcotest.int "one kept" 1 (List.length (Snapshot.list_files dir))

(* --- crash consistency: kill points around the tmp+rename save --- *)

let read_bin path = In_channel.with_open_bin path In_channel.input_all

let with_plan spec f =
  match Dpfault.parse spec with
  | Error msg -> Alcotest.failf "parse %S: %s" spec msg
  | Ok plan ->
    Dpfault.install plan;
    Fun.protect ~finally:Dpfault.clear f

(* Kill point 1, a torn tmp write: the injected [Torn_write] persists
   only a prefix of the tmp before failing, so the published cache file
   must never change, the cache must keep serving every entry, and a
   later clean save must recover — the rename is the commit point. *)
let test_torn_write_never_replaces_cache () =
  let corpus = gen 0.03 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  Snapshot.save snap;
  let path =
    match Snapshot.list_files dir with
    | [ p ] -> p
    | l -> Alcotest.failf "expected one cache file, got %d" (List.length l)
  in
  let clean = read_bin path in
  with_plan "1:snapshot.write=torn@1.0!2" (fun () -> Snapshot.save snap);
  check Alcotest.string "published file byte-untouched" clean (read_bin path);
  let tmp = path ^ ".tmp" in
  check Alcotest.bool "torn tmp left behind" true (Sys.file_exists tmp);
  check Alcotest.bool "tmp really holds only a prefix" true
    (String.length (read_bin tmp) < String.length clean);
  (* The authoritative file still serves everything, bit-identically. *)
  let warm = open_snap ~dir corpus in
  let stats = Snapshot.stats warm in
  check Alcotest.int "every stream still hits"
    (List.length corpus.Corpus.streams)
    stats.Snapshot.s_hits;
  check_identical ~msg:"after abandoned save" warm corpus;
  (* Recovery: the next clean save rewrites the tmp from offset 0 and
     commits; the stale torn tmp is consumed by the rename. *)
  Snapshot.save snap;
  check Alcotest.bool "tmp renamed away" false (Sys.file_exists tmp);
  check Alcotest.string "file is a pure function of its entries" clean
    (read_bin path)

(* Kill point 2, torn very first save: nothing gets published at all —
   an absent cache beats a corrupt one. *)
let test_torn_first_save_publishes_nothing () =
  let corpus = gen 0.02 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  with_plan "1:snapshot.write=torn@1.0!3" (fun () -> Snapshot.save snap);
  check Alcotest.(list string) "no cache file published" []
    (Snapshot.list_files dir);
  let reopened = open_snap ~dir corpus in
  let stats = Snapshot.stats reopened in
  check Alcotest.int "nothing to load" 0 stats.Snapshot.s_loaded;
  check_identical ~msg:"absent cache degrades to misses" reopened corpus

(* Kill point 3, a duplicate/garbage tmp from an earlier crash: a clean
   save must simply overwrite it and publish intact data. *)
let test_stale_garbage_tmp_overwritten () =
  let corpus = gen 0.02 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  let fp =
    Snapshot.fingerprint ~components ~specs:corpus.Corpus.specs
      ~k:Dpcore.Mining.default_k ()
  in
  let tmp = Filename.concat dir (fp ^ ".dpsnap.tmp") in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc "leftover garbage from a crash");
  Snapshot.save snap;
  check Alcotest.bool "tmp consumed by the rename" false
    (Sys.file_exists tmp);
  let warm = open_snap ~dir corpus in
  check Alcotest.int "published file loads every entry"
    (List.length corpus.Corpus.streams)
    (Snapshot.stats warm).Snapshot.s_loaded;
  check_identical ~msg:"after overwriting garbage tmp" warm corpus

(* Kill point 4, the missing-rename crash: promote the torn tmp over the
   cache file by hand (as if the machine died mid-publish with a broken
   fs). The loader must drop the cut record, never serve corrupt data,
   and [inspect] — the engine behind `driveperf cache verify` — must
   count the damage. *)
let test_torn_file_verifies_as_corrupt () =
  let corpus = gen 0.03 in
  let dir = fresh_dir () in
  let snap = open_snap ~dir corpus in
  Snapshot.save snap;
  let path = List.hd (Snapshot.list_files dir) in
  with_plan "1:snapshot.write=torn@1.0!1" (fun () -> Snapshot.save snap);
  Sys.rename (path ^ ".tmp") path;
  let fi = Snapshot.inspect path in
  check Alcotest.bool "cache verify counts the torn record" true
    (fi.Snapshot.fi_corrupt > 0
    || fi.Snapshot.fi_entries < List.length corpus.Corpus.streams);
  let snap = open_snap ~dir corpus in
  let stats = Snapshot.stats snap in
  check Alcotest.bool "cut entries reanalysed, not served" true
    (stats.Snapshot.s_misses > 0);
  check_identical ~msg:"torn file never corrupts results" snap corpus

(* --- property: cached delta = from-scratch, random corpora and splits --- *)

let prop_cached_equals_fresh =
  QCheck.Test.make ~name:"cached delta run = from-scratch (random corpora)"
    ~count:4
    QCheck.(
      triple (int_range 1 1000) (int_range 0 100) bool)
    (fun (seed, split_pct, prov) ->
      with_prov prov @@ fun () ->
      let full = gen ~seed 0.03 in
      let n = List.length full.Corpus.streams in
      let keep = max 1 (n * split_pct / 100) in
      let prefix =
        Corpus.create
          ~streams:(List.filteri (fun i _ -> i < keep) full.Corpus.streams)
          ~specs:full.Corpus.specs
      in
      let dir = fresh_dir () in
      let snap = open_snap ~dir prefix in
      Snapshot.save snap;
      let snap = open_snap ~dir full in
      fresh_doc full = snap_doc snap full
      && per_scenario_str (Pipeline.impact_per_scenario components full)
         = per_scenario_str (Pipeline.impact_per_scenario_snap snap full))

let () =
  Alcotest.run "snapshot"
    [
      ( "identity",
        [
          Alcotest.test_case "stream keys stable and distinct" `Quick
            test_stream_key_stable;
          Alcotest.test_case "cold and warm cache = from-scratch" `Slow
            test_cold_and_warm_identical;
          Alcotest.test_case "append-delta = from-scratch" `Slow
            test_append_delta_identical;
          Alcotest.test_case "provenance on: cached = from-scratch" `Slow
            test_prov_identical;
          Alcotest.test_case "pooled ensure = sequential" `Slow
            test_pooled_identical;
          Alcotest.test_case "mining records reused across runs" `Slow
            test_mining_cache_reuse;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "bit-flipped cache degrades to misses" `Slow
            test_corrupt_cache_recovers;
          Alcotest.test_case "truncated / garbage cache files" `Quick
            test_truncated_and_garbage_files;
          Alcotest.test_case "fingerprint isolates configurations" `Quick
            test_fingerprint_isolation;
          Alcotest.test_case "stale entries counted" `Quick
            test_stale_entries_counted;
          Alcotest.test_case "gc keeps the newest files" `Quick
            test_gc_keeps_newest;
        ] );
      ( "crash consistency",
        [
          Alcotest.test_case "torn write never replaces the cache" `Slow
            test_torn_write_never_replaces_cache;
          Alcotest.test_case "torn first save publishes nothing" `Slow
            test_torn_first_save_publishes_nothing;
          Alcotest.test_case "stale garbage tmp overwritten" `Quick
            test_stale_garbage_tmp_overwritten;
          Alcotest.test_case "torn file counted by cache verify" `Slow
            test_torn_file_verifies_as_corrupt;
        ] );
      ("properties", [ qcheck prop_cached_equals_fresh ]);
    ]
