(* Tests for lib/core/report: the text renderers regenerate the paper's
   tables from analysis results, and the --json twin round-trips through
   a real parser (Tjson, shared with test_obs) carrying provenance for
   every reported component. *)

module Corpus_gen = Dpworkload.Corpus_gen
module Impact = Dpcore.Impact
module Pipeline = Dpcore.Pipeline
module Report = Dpcore.Report
module Provenance = Dpcore.Provenance
module J = Dputil.Jsonw

let check = Alcotest.check
let drivers = Dpcore.Component.drivers

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* One small corpus shared by all tests; provenance-carrying analysis of
   it computed once, with the global switch restored afterwards so other
   suites observe the default (disabled) state. *)
let corpus = lazy (Corpus_gen.generate (Corpus_gen.scaled 0.1))

let with_provenance f =
  Provenance.enable ();
  Fun.protect ~finally:Provenance.disable f

let analyzed =
  lazy
    (with_provenance (fun () ->
         let corpus = Lazy.force corpus in
         let impact, prov = Impact.analyze_prov drivers corpus in
         let graphs =
           Pipeline.build_graphs corpus (Dptrace.Corpus.all_instances corpus)
         in
         let modules = Impact.by_module drivers graphs in
         let scenario = "BrowserTabCreate" in
         let r = Pipeline.run_scenario drivers corpus scenario in
         (impact, prov, modules, [ (scenario, r) ])))

(* --- paper tables --- *)

let test_impact_summary_regenerates () =
  let impact, _, _, _ = Lazy.force analyzed in
  let s = Dputil.Table.render (Report.impact_summary impact) in
  check Alcotest.bool "has headline rows" true
    (List.for_all (contains s)
       [
         "IA_wait";
         "IA_run";
         "IA_opt";
         "D_waitdist";
         Report.pct (Impact.ia_wait impact);
         Report.pct (Impact.ia_opt impact);
         Dputil.Time.to_string impact.Impact.d_scn;
         string_of_int impact.Impact.instances;
       ])

let test_module_breakdown_regenerates () =
  let _, _, modules, _ = Lazy.force analyzed in
  check Alcotest.bool "breakdown is non-trivial" true (List.length modules > 1);
  let s = Dputil.Table.render (Report.module_breakdown modules) in
  let top = List.hd modules in
  check Alcotest.bool "costliest module listed" true
    (contains s top.Impact.module_name);
  check Alcotest.bool "sorted by D_wait descending" true
    (let waits = List.map (fun r -> r.Impact.m_wait) modules in
     List.sort (fun a b -> compare b a) waits = waits)

let test_scenario_classes_totals () =
  let _, _, _, scenarios = Lazy.force analyzed in
  let entries =
    List.map (fun (n, r) -> (n, r.Pipeline.classification)) scenarios
  in
  let s = Dputil.Table.render (Report.scenario_classes entries) in
  let f, m, sl = Dpcore.Classify.counts (snd (List.hd entries)) in
  check Alcotest.bool "totals row matches class counts" true
    (contains s (Printf.sprintf "%d" (f + m + sl)) && contains s "Total")

let test_top_patterns_listing () =
  let _, _, _, scenarios = Lazy.force analyzed in
  let _, r = List.hd scenarios in
  let patterns = r.Pipeline.mining.Dpcore.Mining.patterns in
  check Alcotest.bool "mining found patterns" true (patterns <> []);
  let s = Report.top_patterns patterns ~n:3 in
  let top = List.hd patterns in
  let sig_name =
    Dptrace.Signature.name top.Dpcore.Mining.tuple.Dpcore.Tuple.waits.(0)
  in
  check Alcotest.bool "lists the top tuple's wait signature" true
    (contains s sig_name)

(* --- the JSON twin --- *)

let parsed_document =
  lazy
    (let impact, prov, modules, scenarios = Lazy.force analyzed in
     let doc =
       with_provenance (fun () ->
           Report.Json.document ~impact ~impact_prov:prov ~modules ~scenarios ())
     in
     let text = J.to_string doc in
     (impact, modules, scenarios, text, Tjson.parse text))

let test_json_parses_and_identifies () =
  let _, _, _, _, v = Lazy.force parsed_document in
  check Alcotest.string "tool" "driveperf" (Tjson.get_str "tool" v);
  check (Alcotest.float 0.0) "format" 1.0 (Tjson.get_num "format" v);
  check Alcotest.bool "provenance flag" true
    (Tjson.get "provenance_enabled" v = Tjson.Bool true)

let test_json_impact_numbers_round_trip () =
  let impact, _, _, _, v = Lazy.force parsed_document in
  let i = Tjson.get "impact" v in
  let time k = int_of_float (Tjson.get_num k i) in
  check Alcotest.int "d_scn" impact.Impact.d_scn (time "d_scn");
  check Alcotest.int "d_wait" impact.Impact.d_wait (time "d_wait");
  check Alcotest.int "d_waitdist" impact.Impact.d_waitdist (time "d_waitdist");
  check (Alcotest.float 1e-9) "ia_wait" (Impact.ia_wait impact)
    (Tjson.get_num "ia_wait" i);
  check Alcotest.bool "impact carries provenance" true
    (Tjson.get_arr "top_waits" (Tjson.get "provenance" i) <> [])

let test_json_provenance_for_every_module () =
  let _, modules, _, _, v = Lazy.force parsed_document in
  let rows = Tjson.get_arr "modules" v in
  check Alcotest.int "one row per module" (List.length modules)
    (List.length rows);
  List.iter2
    (fun (m : Impact.module_row) row ->
      check Alcotest.string "module name" m.Impact.module_name
        (Tjson.get_str "module" row);
      let prov = Tjson.get_arr "provenance" row in
      if m.Impact.m_counted_waits > 0 then
        check Alcotest.bool
          (m.Impact.module_name ^ " has witness wait events")
          true (prov <> []);
      (* Each recorded witness resolves to a concrete event with a time
         span inside its instance. *)
      List.iter
        (fun w ->
          let ts = Tjson.get_num "ts" w and te = Tjson.get_num "te" w in
          check Alcotest.bool "ts <= te" true (ts <= te);
          let inst = Tjson.get "instance" w in
          check Alcotest.bool "event within instance span" true
            (Tjson.get_num "t0" inst <= ts && te <= Tjson.get_num "t1" inst))
        prov)
    modules rows

let test_json_patterns_carry_witnesses () =
  let _, _, scenarios, _, v = Lazy.force parsed_document in
  let sc = List.hd (Tjson.get_arr "scenarios" v) in
  check Alcotest.string "scenario name" (fst (List.hd scenarios))
    (Tjson.get_str "name" sc);
  let patterns = Tjson.get_arr "patterns" sc in
  check Alcotest.bool "patterns present" true (patterns <> []);
  List.iteri
    (fun i p ->
      check Alcotest.int "rank is 1-based position" (i + 1)
        (int_of_float (Tjson.get_num "rank" p)))
    patterns;
  let top = List.hd patterns in
  check Alcotest.bool "top pattern has slow-class witnesses" true
    (Tjson.get_arr "witnesses" top <> []);
  List.iter
    (fun w ->
      check Alcotest.bool "witness cost positive" true
        (Tjson.get_num "cost" w > 0.0))
    (Tjson.get_arr "witnesses" top)

let test_json_deterministic () =
  let impact, _, modules, scenarios = Lazy.force analyzed in
  let _, prov, _, _ = Lazy.force analyzed in
  let render () =
    with_provenance (fun () ->
        J.to_string
          (Report.Json.document ~impact ~impact_prov:prov ~modules ~scenarios ()))
  in
  check Alcotest.string "two renders byte-identical" (render ()) (render ())

let test_json_disabled_mode_is_bare () =
  let impact, _, modules, scenarios = Lazy.force analyzed in
  (* Provenance disabled (the default outside with_provenance): the
     document says so and every module's provenance array is empty. *)
  let doc =
    Report.Json.document ~impact ~impact_prov:Provenance.empty_impact ~modules
      ~scenarios ()
  in
  let v = Tjson.parse (J.to_string doc) in
  check Alcotest.bool "flag off" true
    (Tjson.get "provenance_enabled" v = Tjson.Bool false);
  List.iter
    (fun row ->
      check Alcotest.bool "no witnesses" true
        (Tjson.get_arr "provenance" row = []))
    (Tjson.get_arr "modules" v)

let test_jsonw_escaping_round_trips () =
  let doc =
    J.Obj
      [
        ("plain", J.str "hello");
        ("quotes", J.str {|she said "hi"|});
        ("control", J.str "tab\there\nnewline");
        ("backslash", J.str {|C:\drivers\fv.sys|});
        ("numbers", J.Arr [ J.int (-3); J.float 0.125; J.float 1e9 ]);
      ]
  in
  let v = Tjson.parse (J.to_string doc) in
  check Alcotest.string "quotes" {|she said "hi"|} (Tjson.get_str "quotes" v);
  check Alcotest.string "control" "tab\there\nnewline"
    (Tjson.get_str "control" v);
  check Alcotest.string "backslash" {|C:\drivers\fv.sys|}
    (Tjson.get_str "backslash" v);
  match Tjson.get_arr "numbers" v with
  | [ a; b; c ] ->
    check (Alcotest.float 0.0) "int" (-3.0) (Option.get (Tjson.num a));
    check (Alcotest.float 0.0) "fraction" 0.125 (Option.get (Tjson.num b));
    check (Alcotest.float 0.0) "large" 1e9 (Option.get (Tjson.num c))
  | _ -> Alcotest.fail "numbers array shape"

let () =
  Alcotest.run "report"
    [
      ( "tables",
        [
          Alcotest.test_case "impact summary regenerates" `Quick
            test_impact_summary_regenerates;
          Alcotest.test_case "module breakdown regenerates" `Quick
            test_module_breakdown_regenerates;
          Alcotest.test_case "scenario classes totals" `Quick
            test_scenario_classes_totals;
          Alcotest.test_case "top patterns listing" `Quick
            test_top_patterns_listing;
        ] );
      ( "json",
        [
          Alcotest.test_case "parses and identifies" `Quick
            test_json_parses_and_identifies;
          Alcotest.test_case "impact numbers round-trip" `Quick
            test_json_impact_numbers_round_trip;
          Alcotest.test_case "provenance for every module" `Quick
            test_json_provenance_for_every_module;
          Alcotest.test_case "patterns carry witnesses" `Quick
            test_json_patterns_carry_witnesses;
          Alcotest.test_case "deterministic" `Quick test_json_deterministic;
          Alcotest.test_case "disabled mode is bare" `Quick
            test_json_disabled_mode_is_bare;
          Alcotest.test_case "escaping round-trips" `Quick
            test_jsonw_escaping_round_trips;
        ] );
    ]
