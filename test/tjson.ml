(* A minimal in-test JSON parser, just enough to validate the tool's
   JSON exports (engine metrics, Chrome traces, report documents).
   Shared by test_obs and test_report — the tests stanza links every
   module of this directory into each test binary. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then raise (Bad "eof");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    let g = next () in
    if g <> c then raise (Bad (Printf.sprintf "want %c got %c" c g))
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
        | ('"' | '\\' | '/') as c -> Buffer.add_char b c
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let h = String.init 4 (fun _ -> next ()) in
          ignore (int_of_string ("0x" ^ h));
          Buffer.add_char b '?'
        | c -> raise (Bad (Printf.sprintf "bad escape %c" c)));
        go ()
      | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> raise (Bad "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then (expect '}'; Obj [])
      else Obj (members [])
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then (expect ']'; Arr [])
      else Arr (elements [])
    | Some '"' ->
      expect '"';
      Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> raise (Bad "eof")
  and members acc =
    skip_ws ();
    expect '"';
    let k = string_body () in
    skip_ws ();
    expect ':';
    let v = value () in
    skip_ws ();
    match next () with
    | ',' -> members ((k, v) :: acc)
    | '}' -> List.rev ((k, v) :: acc)
    | c -> raise (Bad (Printf.sprintf "bad object sep %c" c))
  and elements acc =
    let v = value () in
    skip_ws ();
    match next () with
    | ',' -> elements (v :: acc)
    | ']' -> List.rev (v :: acc)
    | c -> raise (Bad (Printf.sprintf "bad array sep %c" c))
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then raise (Bad "trailing garbage");
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let arr = function Arr xs -> Some xs | _ -> None

(* Traversal conveniences for deep documents; raise on shape mismatch
   so the failing path shows up in the test message. *)
let get k v =
  match member k v with
  | Some x -> x
  | None -> raise (Bad (Printf.sprintf "missing member %S" k))

let get_arr k v =
  match arr (get k v) with
  | Some xs -> xs
  | None -> raise (Bad (Printf.sprintf "member %S is not an array" k))

let get_num k v =
  match num (get k v) with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "member %S is not a number" k))

let get_str k v =
  match str (get k v) with
  | Some s -> s
  | None -> raise (Bad (Printf.sprintf "member %S is not a string" k))
