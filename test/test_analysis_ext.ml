(* Tests for the analysis extensions: pattern differencing, drill-down
   reports and Graphviz exports. *)

module Time = Dputil.Time
module Tuple = Dpcore.Tuple
module Mining = Dpcore.Mining
module Diff = Dpcore.Diff

let check = Alcotest.check
let sig_ = Dptrace.Signature.of_string

let tuple w =
  Tuple.make ~waits:(List.map sig_ w) ~unwaits:[] ~runnings:[]

let pattern ~w ~cost ~count =
  Mining.make_pattern ~tuple:(tuple w) ~cost ~count ~max_single:cost

(* --- Diff --- *)

let change_of entries w =
  (List.find (fun e -> Tuple.equal e.Diff.tuple (tuple w)) entries).Diff.change

let test_diff_classification () =
  let before =
    [
      pattern ~w:[ "gone.sys!F" ] ~cost:(Time.ms 100) ~count:1;
      pattern ~w:[ "worse.sys!F" ] ~cost:(Time.ms 100) ~count:1;
      pattern ~w:[ "better.sys!F" ] ~cost:(Time.ms 100) ~count:1;
      pattern ~w:[ "same.sys!F" ] ~cost:(Time.ms 100) ~count:1;
    ]
  in
  let after =
    [
      pattern ~w:[ "new.sys!F" ] ~cost:(Time.ms 50) ~count:1;
      pattern ~w:[ "worse.sys!F" ] ~cost:(Time.ms 300) ~count:1;
      pattern ~w:[ "better.sys!F" ] ~cost:(Time.ms 30) ~count:1;
      pattern ~w:[ "same.sys!F" ] ~cost:(Time.ms 110) ~count:1;
    ]
  in
  let entries = Diff.compare_patterns ~before ~after () in
  check Alcotest.bool "appeared" true (change_of entries [ "new.sys!F" ] = Diff.Appeared);
  check Alcotest.bool "disappeared" true
    (change_of entries [ "gone.sys!F" ] = Diff.Disappeared);
  (match change_of entries [ "worse.sys!F" ] with
  | Diff.Regressed f -> check (Alcotest.float 1e-6) "3x worse" 3.0 f
  | _ -> Alcotest.fail "expected Regressed");
  (match change_of entries [ "better.sys!F" ] with
  | Diff.Improved f -> check Alcotest.bool "3.3x better" true (f > 3.0)
  | _ -> Alcotest.fail "expected Improved");
  check Alcotest.bool "stable within threshold" true
    (change_of entries [ "same.sys!F" ] = Diff.Stable)

let test_diff_ordering_and_helpers () =
  let before = [ pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 10) ~count:1 ] in
  let after =
    [
      pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 100) ~count:1;
      pattern ~w:[ "b.sys!F" ] ~cost:(Time.ms 5) ~count:1;
    ]
  in
  let entries = Diff.compare_patterns ~before ~after () in
  (* Regressions first, then appearances. *)
  (match List.map (fun e -> e.Diff.change) entries with
  | [ Diff.Regressed _; Diff.Appeared ] -> ()
  | _ -> Alcotest.fail "unexpected ordering");
  check Alcotest.int "regressions incl. appearances" 2
    (List.length (Diff.regressions entries));
  check Alcotest.int "nothing fixed" 0 (List.length (Diff.fixed entries));
  check Alcotest.bool "summary mentions counts" true
    (String.length (Diff.summary entries) > 10)

let test_diff_threshold () =
  let before = [ pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 100) ~count:1 ] in
  let after = [ pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 180) ~count:1 ] in
  let strict = Diff.compare_patterns ~threshold:1.5 ~before ~after () in
  let lax = Diff.compare_patterns ~threshold:2.0 ~before ~after () in
  check Alcotest.bool "1.8x regresses at 1.5" true
    (match (List.hd strict).Diff.change with Diff.Regressed _ -> true | _ -> false);
  check Alcotest.bool "1.8x stable at 2.0" true
    ((List.hd lax).Diff.change = Diff.Stable)

let test_diff_empty_sides () =
  let p = [ pattern ~w:[ "a.sys!F" ] ~cost:(Time.ms 10) ~count:1 ] in
  check Alcotest.int "all appeared" 1
    (List.length (Diff.regressions (Diff.compare_patterns ~before:[] ~after:p ())));
  check Alcotest.int "all fixed" 1
    (List.length (Diff.fixed (Diff.compare_patterns ~before:p ~after:[] ())));
  check Alcotest.int "both empty" 0
    (List.length (Diff.compare_patterns ~before:[] ~after:[] ()))

(* --- Graphviz exports --- *)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_waitgraph_dot () =
  let case = Dpworkload.Motivating_case.build () in
  let g =
    Dpwaitgraph.Wait_graph.build case.Dpworkload.Motivating_case.stream
      case.Dpworkload.Motivating_case.browser_instance
  in
  let dot = Dpwaitgraph.Wait_graph.to_dot g in
  check Alcotest.bool "digraph" true (string_contains dot "digraph wait_graph");
  check Alcotest.bool "mentions UI thread" true (string_contains dot "Browser.UI");
  check Alcotest.bool "mentions disk" true (string_contains dot "DiskService");
  check Alcotest.bool "has edges" true (string_contains dot "->");
  check Alcotest.bool "closes" true (string_contains dot "}")

let test_awg_dot () =
  let corpus = Dpworkload.Motivating_case.corpus ~copies:4 () in
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus
      "BrowserTabCreate"
  in
  let dot = Dpcore.Awg.to_dot r.Dpcore.Pipeline.slow_awg in
  check Alcotest.bool "digraph" true (string_contains dot "digraph awg");
  check Alcotest.bool "mentions fv.sys" true (string_contains dot "fv.sys");
  check Alcotest.bool "aggregates shown" true (string_contains dot "N=");
  (* Every node line is well-formed enough for dot: balanced quotes. *)
  let quotes = ref 0 in
  String.iter (fun c -> if c = '"' then incr quotes) dot;
  check Alcotest.int "balanced quotes" 0 (!quotes mod 2)

(* --- drill-down report --- *)

let test_top_propagation_paths () =
  let corpus = Dpworkload.Motivating_case.corpus ~copies:4 () in
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus
      "BrowserTabCreate"
  in
  let text = Dpcore.Report.top_propagation_paths r.Dpcore.Pipeline.slow_awg ~n:2 in
  check Alcotest.bool "two blocks" true (string_contains text "path #2");
  check Alcotest.bool "no third block" false (string_contains text "path #3");
  check Alcotest.bool "chains rendered" true (string_contains text "wait ")

let test_module_breakdown_render () =
  let corpus = Dpworkload.Motivating_case.corpus ~copies:2 () in
  let graphs =
    Dpcore.Pipeline.build_graphs corpus (Dptrace.Corpus.all_instances corpus)
  in
  let rows = Dpcore.Impact.by_module Dpcore.Component.drivers graphs in
  let table =
    Dputil.Table.render (Dpcore.Report.module_breakdown rows)
  in
  check Alcotest.bool "fs.sys row" true (string_contains table "fs.sys")

(* --- witness explorer --- *)

let test_witnesses_found () =
  let corpus = Dpworkload.Motivating_case.corpus ~copies:6 () in
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus
      "BrowserTabCreate"
  in
  let pattern = List.hd r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns in
  let ws =
    Dpcore.Explorer.witnesses ~limit:4 Dpcore.Component.drivers corpus
      ~scenario:"BrowserTabCreate" ~pattern ()
  in
  check Alcotest.bool "witnesses found" true (ws <> []);
  check Alcotest.bool "bounded" true (List.length ws <= 4);
  (* Costliest first. *)
  let rec decreasing = function
    | (a : Dpcore.Explorer.witness) :: (b :: _ as rest) ->
      a.Dpcore.Explorer.matched_cost >= b.Dpcore.Explorer.matched_cost
      && decreasing rest
    | _ -> true
  in
  check Alcotest.bool "ranked" true (decreasing ws);
  let w = List.hd ws in
  (* Witnesses of the slow pattern are slow instances. *)
  check Alcotest.bool "witness is slow" true
    (Dptrace.Scenario.duration w.Dpcore.Explorer.instance > Time.ms 500);
  (* The concrete chain realises the pattern down to the hardware. *)
  check Alcotest.bool "chain reaches the disk" true
    (List.exists Dptrace.Event.is_hw_service w.Dpcore.Explorer.chain);
  check Alcotest.bool "chain starts with a wait" true
    (Dptrace.Event.is_wait (List.hd w.Dpcore.Explorer.chain));
  let rendered = Dpcore.Explorer.render w in
  check Alcotest.bool "narrative names the UI thread" true
    (string_contains rendered "Browser.UI")

let test_witnesses_absent_pattern () =
  let corpus = Dpworkload.Motivating_case.corpus ~copies:2 () in
  let pattern =
    (Mining.make_pattern
       ~tuple:(tuple [ "nosuch.sys!F" ])
       ~cost:1 ~count:1 ~max_single:1)
  in
  let ws =
    Dpcore.Explorer.witnesses Dpcore.Component.drivers corpus
      ~scenario:"BrowserTabCreate" ~pattern ()
  in
  check Alcotest.int "no witnesses" 0 (List.length ws)

(* --- bootstrap robustness --- *)

let test_bootstrap_basic () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.05) in
  let r = Dpcore.Robustness.bootstrap ~replicates:50 Dpcore.Component.drivers corpus in
  check Alcotest.int "replicates recorded" 50 r.Dpcore.Robustness.replicates;
  (* Point estimates must match the direct analysis... *)
  let direct = Dpcore.Pipeline.run_impact Dpcore.Component.drivers corpus in
  check (Alcotest.float 1e-9) "point = direct"
    (Dpcore.Impact.ia_wait direct)
    r.Dpcore.Robustness.ia_wait.Dpcore.Robustness.point;
  (* ...and lie within their own intervals (they should, overwhelmingly). *)
  List.iter
    (fun (ci : Dpcore.Robustness.ci) ->
      check Alcotest.bool "interval ordered" true
        (ci.Dpcore.Robustness.lo <= ci.Dpcore.Robustness.hi);
      check Alcotest.bool "point in interval" true
        (Dpcore.Robustness.contains ci ci.Dpcore.Robustness.point))
    [
      r.Dpcore.Robustness.ia_wait;
      r.Dpcore.Robustness.ia_run;
      r.Dpcore.Robustness.ia_opt;
      r.Dpcore.Robustness.propagation_ratio;
    ]

let test_bootstrap_deterministic () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.03) in
  let a = Dpcore.Robustness.bootstrap ~replicates:30 ~seed:7 Dpcore.Component.drivers corpus in
  let b = Dpcore.Robustness.bootstrap ~replicates:30 ~seed:7 Dpcore.Component.drivers corpus in
  check (Alcotest.float 1e-12) "same lo"
    a.Dpcore.Robustness.ia_wait.Dpcore.Robustness.lo
    b.Dpcore.Robustness.ia_wait.Dpcore.Robustness.lo;
  let c = Dpcore.Robustness.bootstrap ~replicates:30 ~seed:8 Dpcore.Component.drivers corpus in
  check Alcotest.bool "different seed differs" true
    (a.Dpcore.Robustness.ia_wait.Dpcore.Robustness.lo
    <> c.Dpcore.Robustness.ia_wait.Dpcore.Robustness.lo)

let test_bootstrap_empty () =
  let corpus = Dptrace.Corpus.create ~streams:[] ~specs:[] in
  let r = Dpcore.Robustness.bootstrap ~replicates:10 Dpcore.Component.drivers corpus in
  check (Alcotest.float 1e-9) "degenerate" 0.0
    r.Dpcore.Robustness.ia_wait.Dpcore.Robustness.hi

let () =
  Alcotest.run "analysis-ext"
    [
      ( "diff",
        [
          Alcotest.test_case "classification" `Quick test_diff_classification;
          Alcotest.test_case "ordering/helpers" `Quick test_diff_ordering_and_helpers;
          Alcotest.test_case "threshold" `Quick test_diff_threshold;
          Alcotest.test_case "empty sides" `Quick test_diff_empty_sides;
        ] );
      ( "dot",
        [
          Alcotest.test_case "wait graph" `Quick test_waitgraph_dot;
          Alcotest.test_case "awg" `Quick test_awg_dot;
        ] );
      ( "drill-down",
        [
          Alcotest.test_case "propagation paths" `Quick test_top_propagation_paths;
          Alcotest.test_case "module breakdown" `Quick test_module_breakdown_render;
        ] );
      ( "witness",
        [
          Alcotest.test_case "found and ranked" `Quick test_witnesses_found;
          Alcotest.test_case "absent pattern" `Quick test_witnesses_absent_pattern;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "bootstrap basics" `Quick test_bootstrap_basic;
          Alcotest.test_case "deterministic" `Quick test_bootstrap_deterministic;
          Alcotest.test_case "empty corpus" `Quick test_bootstrap_empty;
        ] );
    ]
