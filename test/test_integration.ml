(* End-to-end integration tests: the full pipeline over a generated corpus
   must reproduce the paper's shapes, and serialisation must not perturb
   any result. *)

module Corpus_gen = Dpworkload.Corpus_gen
module Pipeline = Dpcore.Pipeline
module Impact = Dpcore.Impact
module Mining = Dpcore.Mining
module Evaluation = Dpcore.Evaluation

let check = Alcotest.check
let drivers = Dpcore.Component.drivers

(* One corpus shared by all integration tests (generation is fast but
   not free). *)
let corpus = lazy (Corpus_gen.generate (Corpus_gen.scaled 0.25))

let named_results =
  lazy
    (List.map
       (fun (tpl : Dpworkload.Scenarios.template) ->
         let name = tpl.Dpworkload.Scenarios.spec.Dptrace.Scenario.name in
         (name, Pipeline.run_scenario drivers (Lazy.force corpus) name))
       Dpworkload.Scenarios.named)

let test_impact_bands () =
  let r = Pipeline.run_impact drivers (Lazy.force corpus) in
  let ia_wait = 100.0 *. Impact.ia_wait r in
  let ia_run = 100.0 *. Impact.ia_run r in
  let ia_opt = 100.0 *. Impact.ia_opt r in
  let ratio = Impact.propagation_ratio r in
  (* Paper: 36.4 / 1.6 / 26 / 3.5. We assert the shape bands. *)
  check Alcotest.bool "IA_wait in band" true (ia_wait > 30.0 && ia_wait < 55.0);
  check Alcotest.bool "IA_run in band" true (ia_run > 0.5 && ia_run < 4.0);
  check Alcotest.bool "IA_opt in band" true (ia_opt > 15.0 && ia_opt < 35.0);
  check Alcotest.bool "wait dominates CPU >10x" true (ia_wait /. ia_run > 10.0);
  check Alcotest.bool "propagation ratio > 1.5" true (ratio > 1.5);
  check Alcotest.bool "consistency: opt = wait*(1-1/ratio)" true
    (abs_float (ia_opt -. (ia_wait *. (1.0 -. (1.0 /. ratio)))) < 0.5)

let test_all_scenarios_mine_patterns () =
  List.iter
    (fun (name, (r : Pipeline.scenario_result)) ->
      let n = List.length r.Pipeline.mining.Mining.patterns in
      check Alcotest.bool (name ^ " has patterns") true (n >= 10);
      check Alcotest.bool (name ^ " has contrasts") true
        (r.Pipeline.mining.Mining.contrast_metas <> []))
    (Lazy.force named_results)

let test_itc_le_ttc () =
  List.iter
    (fun (name, (r : Pipeline.scenario_result)) ->
      let c = r.Pipeline.coverages in
      check Alcotest.bool (name ^ " itc<=ttc") true
        (c.Evaluation.itc <= c.Evaluation.ttc +. 1e-9);
      check Alcotest.bool (name ^ " ttc bounded") true
        (c.Evaluation.ttc <= 1.0 +. 1e-9))
    (Lazy.force named_results)

let test_ranking_concentrates () =
  List.iter
    (fun (name, (r : Pipeline.scenario_result)) ->
      let ps = r.Pipeline.mining.Mining.patterns in
      let c10 = Evaluation.ranking_coverage ps ~top_fraction:0.10 in
      let c30 = Evaluation.ranking_coverage ps ~top_fraction:0.30 in
      check Alcotest.bool (name ^ " top-10% beats uniform") true (c10 > 0.10);
      check Alcotest.bool (name ^ " monotone") true (c30 >= c10))
    (Lazy.force named_results)

let result name = List.assoc name (Lazy.force named_results)

let test_tab_switch_non_optimizable () =
  (* The paper: 66.6% of TabSwitch driver cost is direct hardware; it must
     be the most hardware-bound of the browser scenarios here too. *)
  let ts = Dpcore.Awg.non_optimizable_fraction (result "BrowserTabSwitch").Pipeline.slow_awg in
  check Alcotest.bool "substantial" true (ts > 0.4);
  let tc = Dpcore.Awg.non_optimizable_fraction (result "BrowserTabCreate").Pipeline.slow_awg in
  check Alcotest.bool "dominates TabCreate" true (ts > tc)

let top10_types name =
  Evaluation.driver_type_counts
    (result name).Pipeline.mining.Mining.patterns ~top_n:10
    ~type_of:Dpworkload.Taxonomy.type_name_of_signature

let test_table4_affinities () =
  (* MenuDisplay is network-bound. *)
  (match top10_types "MenuDisplay" with
  | (ty, _) :: _ -> check Alcotest.string "menu top type" "Network" ty
  | [] -> Alcotest.fail "no types for MenuDisplay");
  (* File-system drivers appear in AppAccessControl's patterns alongside
     filters (the security-software architecture). *)
  let acc = top10_types "AppAccessControl" in
  check Alcotest.bool "filters in access control" true
    (List.mem_assoc "FileSystem Filter" acc);
  check Alcotest.bool "fs in access control" true
    (List.mem_assoc "FileSystem/Storage" acc);
  (* Graphics shows up for AppNonResponsive (the hard-fault motif). *)
  let anr = top10_types "AppNonResponsive" in
  check Alcotest.bool "graphics in non-responsive" true
    (List.mem_assoc "Graphics" anr)

let test_classification_shapes () =
  (* WebPageNavigation is the majority-fast scenario (paper: 54% fast);
     BrowserTabCreate is majority-slow (paper: 64% slow). *)
  let frac name pick =
    let c = (result name).Pipeline.classification in
    let f, m, s = Dpcore.Classify.counts c in
    let total = float_of_int (f + m + s) in
    pick (float_of_int f /. total) (float_of_int s /. total)
  in
  check Alcotest.bool "wpn mostly fast" true
    (frac "WebPageNavigation" (fun f _ -> f > 0.4));
  check Alcotest.bool "tab create mostly slow" true
    (frac "BrowserTabCreate" (fun _ s -> s > 0.5))

let test_codec_preserves_analysis () =
  let corpus = Corpus_gen.generate (Corpus_gen.scaled 0.05) in
  let reloaded =
    Dptrace.Codec.corpus_of_string (Dptrace.Codec.corpus_to_string corpus)
  in
  let a = Pipeline.run_impact drivers corpus in
  let b = Pipeline.run_impact drivers reloaded in
  check Alcotest.int "d_scn preserved" a.Impact.d_scn b.Impact.d_scn;
  check Alcotest.int "d_wait preserved" a.Impact.d_wait b.Impact.d_wait;
  check Alcotest.int "d_waitdist preserved" a.Impact.d_waitdist b.Impact.d_waitdist;
  check Alcotest.int "d_run preserved" a.Impact.d_run b.Impact.d_run

let test_k_ablation_monotone () =
  (* Larger segment bounds can only discover more (or equal) contrast
     meta-patterns. *)
  let corpus = Lazy.force corpus in
  let metas k =
    let r = Pipeline.run_scenario ~k drivers corpus "BrowserTabCreate" in
    List.length r.Pipeline.mining.Mining.contrast_metas
  in
  let m1 = metas 1 and m3 = metas 3 and m5 = metas 5 in
  check Alcotest.bool "k=3 >= k=1" true (m3 >= m1);
  check Alcotest.bool "k=5 >= k=3" true (m5 >= m3)

let test_reduction_ablation () =
  (* Disabling the non-optimisable reduction must add hardware-only
     structures back into the AWG. *)
  let corpus = Lazy.force corpus in
  let reduced = Pipeline.run_scenario ~reduce:true drivers corpus "BrowserTabSwitch" in
  let full = Pipeline.run_scenario ~reduce:false drivers corpus "BrowserTabSwitch" in
  check Alcotest.bool "more cost without reduction" true
    (Dpcore.Awg.total_cost full.Pipeline.slow_awg
    > Dpcore.Awg.total_cost reduced.Pipeline.slow_awg)

let test_witness_on_full_corpus () =
  let corpus = Lazy.force corpus in
  let r = result "BrowserTabCreate" in
  let pattern = List.hd r.Pipeline.mining.Mining.patterns in
  match
    Dpcore.Explorer.witnesses ~limit:2 drivers corpus
      ~scenario:"BrowserTabCreate" ~pattern ()
  with
  | [] -> Alcotest.fail "top pattern has no witness in its own corpus"
  | w :: _ ->
    let spec = r.Pipeline.classification.Dpcore.Classify.spec in
    check Alcotest.bool "witness is a slow instance" true
      (Dptrace.Scenario.classify spec w.Dpcore.Explorer.instance
      = Dptrace.Scenario.Slow);
    (* And the timeline of the witness renders. *)
    check Alcotest.bool "timeline renders" true
      (String.length
         (Dptrace.Timeline.render_instance w.Dpcore.Explorer.stream
            w.Dpcore.Explorer.instance)
      > 100)

let test_report_renderers () =
  let named = Lazy.force named_results in
  let classes = List.map (fun (n, r) -> (n, r.Pipeline.classification)) named in
  let tables =
    [
      Dputil.Table.render (Dpcore.Report.scenario_classes classes);
      Dputil.Table.render (Dpcore.Report.coverages named);
      Dputil.Table.render (Dpcore.Report.ranking named);
      Dputil.Table.render
        (Dpcore.Report.driver_types named
           ~type_names:
             (List.map Dpworkload.Taxonomy.type_name Dpworkload.Taxonomy.all_types)
           ~type_of:Dpworkload.Taxonomy.type_name_of_signature);
    ]
  in
  List.iter
    (fun t -> check Alcotest.bool "non-empty table" true (String.length t > 100))
    tables

let () =
  Alcotest.run "integration"
    [
      ( "paper shapes",
        [
          Alcotest.test_case "impact bands (E1)" `Slow test_impact_bands;
          Alcotest.test_case "patterns everywhere (E3)" `Slow
            test_all_scenarios_mine_patterns;
          Alcotest.test_case "ITC <= TTC (E3)" `Slow test_itc_le_ttc;
          Alcotest.test_case "ranking concentrates (E4)" `Slow
            test_ranking_concentrates;
          Alcotest.test_case "TabSwitch non-optimisable (E9)" `Slow
            test_tab_switch_non_optimizable;
          Alcotest.test_case "Table 4 affinities (E5)" `Slow test_table4_affinities;
          Alcotest.test_case "class shapes (E2)" `Slow test_classification_shapes;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "codec preserves analysis" `Slow
            test_codec_preserves_analysis;
          Alcotest.test_case "k ablation monotone (A1)" `Slow test_k_ablation_monotone;
          Alcotest.test_case "reduction ablation (A2)" `Slow test_reduction_ablation;
          Alcotest.test_case "report renderers" `Slow test_report_renderers;
          Alcotest.test_case "witness on full corpus" `Slow
            test_witness_on_full_corpus;
        ] );
    ]
