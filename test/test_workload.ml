(* Tests for the workload layer: taxonomy, motifs, scenario templates, the
   corpus generator and the motivating case. *)

module Engine = Dpsim.Engine
module Time = Dputil.Time
module Prng = Dputil.Prng
module T = Dpworkload.Taxonomy
module Scenarios = Dpworkload.Scenarios
module Corpus_gen = Dpworkload.Corpus_gen
module MC = Dpworkload.Motivating_case

let check = Alcotest.check

(* --- taxonomy --- *)

let test_taxonomy_modules () =
  check Alcotest.bool "fv.sys is a filter" true
    (T.type_of_module "fv.sys" = Some T.Fs_filter);
  check Alcotest.bool "case-insensitive" true
    (T.type_of_module "FV.SYS" = Some T.Fs_filter);
  check Alcotest.bool "se.sys is encryption" true
    (T.type_of_module "se.sys" = Some T.Storage_encryption);
  check Alcotest.bool "unknown module" true (T.type_of_module "foo.dll" = None)

let test_taxonomy_signatures () =
  check (Alcotest.option Alcotest.string) "fs read" (Some "FileSystem/Storage")
    (T.type_name_of_signature T.fs_read);
  check (Alcotest.option Alcotest.string) "graphics" (Some "Graphics")
    (T.type_name_of_signature T.gfx_render);
  check (Alcotest.option Alcotest.string) "hw dummy untyped" None
    (T.type_name_of_signature T.disk_service);
  check (Alcotest.option Alcotest.string) "kernel untyped" None
    (T.type_name_of_signature Dpsim.Program.kernel_worker)

let test_taxonomy_covers_table4 () =
  check Alcotest.int "ten types" 10 (List.length T.all_types);
  let names = List.map T.type_name T.all_types in
  check Alcotest.int "distinct names" 10 (List.length (List.sort_uniq compare names))

(* --- scenario templates all run --- *)

let run_template (tpl : Scenarios.template) profile seed =
  let engine = Engine.create ~stream_id:0 () in
  let env = Dpworkload.Env.create engine in
  let ctx = { Dpworkload.Motifs.env; prng = Prng.of_int seed } in
  let steps = tpl.Scenarios.program ctx profile in
  ignore
    (Engine.spawn engine ~scenario:tpl.Scenarios.spec.Dptrace.Scenario.name
       ~start_at:0 ~name:"t"
       ~base_stack:[ tpl.Scenarios.entry ]
       steps);
  Engine.run engine

let test_all_templates_run () =
  List.iter
    (fun (tpl : Scenarios.template) ->
      List.iter
        (fun profile ->
          List.iter
            (fun seed ->
              let st = run_template tpl profile seed in
              check Alcotest.bool
                (tpl.Scenarios.spec.Dptrace.Scenario.name ^ " valid")
                true
                (Dptrace.Validate.is_valid st);
              check Alcotest.int
                (tpl.Scenarios.spec.Dptrace.Scenario.name ^ " one instance")
                1
                (List.length st.Dptrace.Stream.instances))
            [ 1; 2; 3 ])
        [ Scenarios.Light; Scenarios.Heavy ])
    Scenarios.all

let test_light_solo_is_fast () =
  (* Under zero load, light profiles must classify fast for the named
     scenarios (slowness is meant to be emergent, not built-in). *)
  List.iter
    (fun (tpl : Scenarios.template) ->
      let st = run_template tpl Scenarios.Light 5 in
      let i = List.hd st.Dptrace.Stream.instances in
      check Alcotest.bool
        (tpl.Scenarios.spec.Dptrace.Scenario.name ^ " light solo fast")
        true
        (Dptrace.Scenario.classify tpl.Scenarios.spec i = Dptrace.Scenario.Fast))
    Scenarios.named

let test_find_and_specs () =
  check Alcotest.bool "find hit" true (Scenarios.find "BrowserTabCreate" <> None);
  check Alcotest.bool "find miss" true (Scenarios.find "NoSuch" = None);
  check Alcotest.int "all specs" (List.length Scenarios.all)
    (List.length Scenarios.all_specs);
  check Alcotest.int "eight named" 8 (List.length Scenarios.named)

(* --- motifs produce the driver modules Table 4 expects --- *)

let modules_of_motif build =
  (* Unquantised running events: sub-millisecond driver computes must
     still leave their signatures visible to this test. *)
  let engine = Engine.create ~quantize_running:false ~stream_id:0 () in
  let env = Dpworkload.Env.create engine in
  let ctx = { Dpworkload.Motifs.env; prng = Prng.of_int 11 } in
  ignore
    (Engine.spawn engine ~start_at:0 ~name:"t"
       ~base_stack:[ Dptrace.Signature.of_string "app!main" ]
       (build ctx));
  let st = Engine.run engine in
  let mods = ref [] in
  Array.iter
    (fun (e : Dptrace.Event.t) ->
      Array.iter
        (fun s -> mods := Dptrace.Signature.module_part s :: !mods)
        (Dptrace.Callstack.frames e.Dptrace.Event.stack))
    st.Dptrace.Stream.events;
  List.sort_uniq compare !mods

let test_motif_modules () =
  let module M = Dpworkload.Motifs in
  let expects =
    [
      ("cached_file_open", (fun ctx -> M.cached_file_open ctx), [ "fv.sys" ]);
      ("cache_lookup", (fun ctx -> M.cache_lookup ctx), [ "ioc.sys" ]);
      ("mouse_input", (fun ctx -> M.mouse_input ctx), [ "mou.sys" ]);
      ("disk_read", (fun ctx -> M.disk_read ctx ~dur:(Time.ms 20)), [ "fs.sys" ]);
      ( "encrypted_disk_read",
        (fun ctx -> M.encrypted_disk_read ctx ~dur:(Time.ms 20)),
        [ "fs.sys"; "se.sys" ] );
      ( "mdu_read",
        (fun ctx -> M.mdu_read ctx ~dur:(Time.ms 20) ~encrypted:true),
        [ "fs.sys"; "se.sys" ] );
      ( "mdu_write",
        (fun ctx -> M.mdu_write ctx ~dur:(Time.ms 20) ~encrypted:true),
        [ "fs.sys"; "se.sys" ] );
      ("net_fetch", (fun ctx -> M.net_fetch ctx ~dur:(Time.ms 20)), [ "net.sys"; "tcpip.sys" ]);
      ( "net_fetch_served",
        (fun ctx -> M.net_fetch_served ctx ~dur:(Time.ms 20)),
        [ "net.sys"; "tcpip.sys" ] );
      ("dns_resolve", (fun ctx -> M.dns_resolve ctx), [ "net.sys" ]);
      ( "file_table_chain",
        (fun ctx ->
          M.file_table_chain ctx ~inner:(M.disk_read ctx ~dur:(Time.ms 10))),
        [ "fv.sys"; "fs.sys" ] );
      ("av_inspection", (fun ctx -> M.av_inspection ctx ~dur:(Time.ms 20)), [ "av.sys"; "fs.sys" ]);
      ("av_serialized", (fun ctx -> M.av_serialized ctx ~dur:(Time.ms 20)), [ "av.sys" ]);
      ("gpu_render", (fun ctx -> M.gpu_render ctx ~dur:(Time.ms 20)), [ "graphics.sys" ]);
      ( "hard_fault_page_read",
        (fun ctx -> M.hard_fault_page_read ctx ~dur:(Time.ms 50)),
        [ "graphics.sys"; "se.sys" ] );
      ( "guarded_disk_read",
        (fun ctx -> M.guarded_disk_read ctx ~dur:(Time.ms 20)),
        [ "dp.sys"; "fs.sys" ] );
      ( "disk_protection_halt",
        (fun ctx -> M.disk_protection_halt ctx ~dur:(Time.ms 20)),
        [ "dp.sys" ] );
      ( "backup_copy_on_write",
        (fun ctx -> M.backup_copy_on_write ctx ~dur:(Time.ms 20)),
        [ "bk.sys"; "fs.sys" ] );
      ("acpi_transition", (fun ctx -> M.acpi_transition ctx), [ "acpi.sys" ]);
      ( "direct_disk_read",
        (fun ctx -> M.direct_disk_read ctx ~dur:(Time.ms 20)),
        [ "fs.sys" ] );
      ( "direct_gpu_wait",
        (fun ctx -> M.direct_gpu_wait ctx ~dur:(Time.ms 20)),
        [ "graphics.sys" ] );
    ]
  in
  List.iter
    (fun (name, build, expected_modules) ->
      let mods = modules_of_motif build in
      List.iter
        (fun m ->
          check Alcotest.bool
            (Printf.sprintf "%s mentions %s" name m)
            true (List.mem m mods))
        expected_modules)
    expects

(* --- corpus generation --- *)

let small_config = { Corpus_gen.default_config with Corpus_gen.scale = 0.03 }

let test_corpus_valid () =
  let corpus = Corpus_gen.generate small_config in
  check (Alcotest.list Alcotest.string) "no violations" []
    (List.map
       (fun (sid, v) ->
         Format.asprintf "s%d: %a" sid Dptrace.Validate.pp_violation v)
       (Dptrace.Validate.check_corpus corpus))

let test_corpus_targets () =
  let corpus = Corpus_gen.generate small_config in
  List.iter
    (fun (name, target) ->
      let want =
        max 1
          (int_of_float
             (Float.round (small_config.Corpus_gen.scale *. float_of_int target)))
      in
      let got = List.length (Dptrace.Corpus.instances_of corpus name) in
      check Alcotest.bool (name ^ " reaches target") true (got >= want))
    Corpus_gen.target_counts

let test_corpus_deterministic () =
  let a = Corpus_gen.generate small_config in
  let b = Corpus_gen.generate small_config in
  check Alcotest.string "same corpus"
    (Dptrace.Codec.corpus_to_string a)
    (Dptrace.Codec.corpus_to_string b)

let test_corpus_seed_sensitive () =
  let a = Corpus_gen.generate small_config in
  let b = Corpus_gen.generate { small_config with Corpus_gen.seed = 77 } in
  check Alcotest.bool "different corpora" true
    (Dptrace.Codec.corpus_to_string a <> Dptrace.Codec.corpus_to_string b)

let test_corpus_specs_complete () =
  let corpus = Corpus_gen.generate small_config in
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " has spec") true
        (Dptrace.Corpus.find_spec corpus name <> None))
    (Dptrace.Corpus.scenario_names corpus)

let test_episode_exposed () =
  let prng = Prng.of_int 3 in
  let st =
    Corpus_gen.build_episode ~stream_id:9 ~prng ~quantize:true ~cross:true
      Scenarios.browser_tab_create
  in
  check Alcotest.int "stream id" 9 st.Dptrace.Stream.id;
  check Alcotest.bool "has tab-create instances" true
    (List.exists
       (fun (i : Dptrace.Scenario.instance) -> i.scenario = "BrowserTabCreate")
       st.Dptrace.Stream.instances);
  check Alcotest.bool "valid" true (Dptrace.Validate.is_valid st)

(* --- motivating case --- *)

let test_case_exceeds_tslow () =
  let case = MC.build () in
  let d = Dptrace.Scenario.duration case.MC.browser_instance in
  check Alcotest.bool "over 800ms" true (d > Time.ms 800);
  check Alcotest.bool "valid stream" true (Dptrace.Validate.is_valid case.MC.stream)

let test_case_deterministic () =
  let a = MC.build () and b = MC.build () in
  check Alcotest.int "same duration"
    (Dptrace.Scenario.duration a.MC.browser_instance)
    (Dptrace.Scenario.duration b.MC.browser_instance)

let test_case_corpus_classes () =
  let corpus = MC.corpus ~copies:8 () in
  let c = Dpcore.Classify.classify corpus "BrowserTabCreate" in
  let f, _, s = Dpcore.Classify.counts c in
  check Alcotest.int "8 fast replicas" 8 f;
  check Alcotest.int "8 slow replicas" 8 s

let test_case_pattern_rediscovered () =
  let corpus = MC.corpus ~copies:10 () in
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus
      "BrowserTabCreate"
  in
  match r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns with
  | [] -> Alcotest.fail "no pattern mined"
  | top :: _ ->
    let names =
      List.map Dptrace.Signature.name
        (Dpcore.Tuple.all_signatures top.Dpcore.Mining.tuple)
    in
    List.iter
      (fun expected ->
        check Alcotest.bool (expected ^ " present") true (List.mem expected names))
      MC.expected_pattern_signatures

let () =
  Alcotest.run "dpworkload"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "modules" `Quick test_taxonomy_modules;
          Alcotest.test_case "signatures" `Quick test_taxonomy_signatures;
          Alcotest.test_case "table 4 coverage" `Quick test_taxonomy_covers_table4;
        ] );
      ( "templates",
        [
          Alcotest.test_case "all run and validate" `Slow test_all_templates_run;
          Alcotest.test_case "light solo is fast" `Quick test_light_solo_is_fast;
          Alcotest.test_case "find/specs" `Quick test_find_and_specs;
        ] );
      ( "motifs",
        [ Alcotest.test_case "driver modules" `Quick test_motif_modules ] );
      ( "corpus",
        [
          Alcotest.test_case "valid" `Quick test_corpus_valid;
          Alcotest.test_case "targets reached" `Quick test_corpus_targets;
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "seed sensitive" `Quick test_corpus_seed_sensitive;
          Alcotest.test_case "specs complete" `Quick test_corpus_specs_complete;
          Alcotest.test_case "episode exposed" `Quick test_episode_exposed;
        ] );
      ( "motivating case",
        [
          Alcotest.test_case "exceeds tslow" `Quick test_case_exceeds_tslow;
          Alcotest.test_case "deterministic" `Quick test_case_deterministic;
          Alcotest.test_case "corpus classes" `Quick test_case_corpus_classes;
          Alcotest.test_case "pattern rediscovered" `Quick
            test_case_pattern_rediscovered;
        ] );
    ]
