(* Tests for the Aggregated Wait Graph (Definitions 2-3, Algorithm 1). *)

module P = Dpsim.Program
module Engine = Dpsim.Engine
module Time = Dputil.Time
module Awg = Dpcore.Awg
module WG = Dpwaitgraph.Wait_graph

let check = Alcotest.check
let sig_ = Dptrace.Signature.of_string
let drivers = Dpcore.Component.drivers

(* One contention episode: victim (instance) blocks on a driver lock whose
   holder performs a served disk read. *)
let episode ~stream_id ~hold_ms =
  let engine = Engine.create ~stream_id () in
  let lock = Engine.new_lock engine ~name:"L" in
  let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
  let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [
        P.call (sig_ "d.sys!Route")
          [
            P.locked lock
              [
                P.request svc
                  [ P.call (sig_ "e.sys!Read") [ P.hw disk (Time.ms hold_ms) ] ];
              ];
          ];
      ]
  in
  let _victim =
    Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
      ~base_stack:[ sig_ "app!op" ]
      [ P.call (sig_ "d.sys!Route") [ P.locked lock [ P.compute (Time.ms 1) ] ] ]
  in
  Engine.run engine

let graphs_of st =
  let index = Dptrace.Stream.index st in
  List.map (WG.build ~index st) st.Dptrace.Stream.instances

let waiting_root awg =
  List.find
    (fun n -> match n.Awg.status with Awg.Waiting _ -> true | _ -> false)
    (Awg.roots awg)

let test_structure_and_signatures () =
  let awg = Awg.build drivers (graphs_of (episode ~stream_id:0 ~hold_ms:30)) in
  (* Roots: the victim's driver wait plus its own driver compute. *)
  check Alcotest.int "two roots" 2 (List.length (Awg.roots awg));
  let root = waiting_root awg in
  (match root.Awg.status with
  | Awg.Waiting { wait_sig; unwait_sig } ->
    check Alcotest.string "wait sig" "d.sys!Route" (Dptrace.Signature.name wait_sig);
    check Alcotest.string "unwait sig" "d.sys!Route"
      (Dptrace.Signature.name unwait_sig)
  | _ -> Alcotest.fail "expected a waiting root");
  check Alcotest.int "root count" 1 root.Awg.count;
  (* Child: the holder's wait on its worker (d.sys!Route → kernel). *)
  check Alcotest.bool "has children" true (Hashtbl.length root.Awg.children > 0)

let test_merging_accumulates () =
  let g1 = graphs_of (episode ~stream_id:0 ~hold_ms:30) in
  let g2 = graphs_of (episode ~stream_id:1 ~hold_ms:50) in
  let awg = Awg.build drivers (g1 @ g2) in
  check Alcotest.int "merged roots" 2 (List.length (Awg.roots awg));
  let root = waiting_root awg in
  check Alcotest.int "N accumulates" 2 root.Awg.count;
  check Alcotest.bool "C sums" true (root.Awg.cost > Time.ms 70);
  check Alcotest.bool "max_cost tracks biggest" true
    (root.Awg.max_cost >= Time.ms 49 && root.Awg.max_cost < Time.ms 52)

let test_irrelevant_nodes_promoted () =
  (* Victim waits with app-only frames: its wait node must be eliminated
     and the holder's driver activity promoted to the roots. *)
  let engine = Engine.create ~stream_id:0 () in
  let q = Engine.new_lock engine ~name:"Q" in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [
        P.locked
          ~acquire_frames:[ sig_ "App!Queue" ]
          q
          [ P.compute ~frame:(sig_ "d.sys!Busy") (Time.ms 10) ];
      ]
  in
  let _victim =
    Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
      ~base_stack:[ sig_ "app!op" ]
      [ P.locked ~acquire_frames:[ sig_ "App!Queue" ] q [ P.compute (Time.ms 1) ] ]
  in
  let st = Engine.run engine in
  let awg = Awg.build drivers (graphs_of st) in
  match Awg.roots awg with
  | [ root ] ->
    (match root.Awg.status with
    | Awg.Running s ->
      check Alcotest.string "promoted driver running" "d.sys!Busy"
        (Dptrace.Signature.name s)
    | _ -> Alcotest.fail "expected a running root after promotion")
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let direct_hw_episode () =
  let engine = Engine.create ~stream_id:0 () in
  let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
  let _victim =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"v"
      ~base_stack:[ sig_ "app!op" ]
      [ P.call (sig_ "d.sys!Read") [ P.hw disk (Time.ms 25) ] ]
  in
  Engine.run engine

let test_reduction_prunes_direct_hw () =
  let graphs = graphs_of (direct_hw_episode ()) in
  let reduced = Awg.build ~reduce:true drivers graphs in
  check Alcotest.int "pruned away" 0 (List.length (Awg.roots reduced));
  let red = Awg.reduction reduced in
  check Alcotest.int "one pruned root" 1 red.Awg.pruned_roots;
  check Alcotest.int "pruned cost is the wait" (Time.ms 25) red.Awg.pruned_cost;
  check (Alcotest.float 1e-9) "fully non-optimisable" 1.0
    (Awg.non_optimizable_fraction reduced);
  let unreduced = Awg.build ~reduce:false drivers graphs in
  check Alcotest.int "kept without reduction" 1 (List.length (Awg.roots unreduced))

let test_reduction_keeps_propagated () =
  (* A wait with a hardware leaf AND a running child survives. *)
  let engine = Engine.create ~stream_id:0 () in
  let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
  let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
  let _victim =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"v"
      ~base_stack:[ sig_ "app!op" ]
      [
        P.call (sig_ "d.sys!Read")
          [
            P.request svc
              [
                P.call (sig_ "e.sys!Srv")
                  [ P.hw disk (Time.ms 10); P.compute ~frame:(sig_ "e.sys!Cpu") (Time.ms 5) ];
              ];
          ];
      ]
  in
  let st = Engine.run engine in
  let awg = Awg.build ~reduce:true drivers (graphs_of st) in
  check Alcotest.bool "survives reduction" true (Awg.roots awg <> [])

let test_segments_and_paths () =
  let awg = Awg.build drivers (graphs_of (episode ~stream_id:0 ~hold_ms:30)) in
  let n = Awg.node_count awg in
  (* k=1 segments are exactly the nodes. *)
  let k1 = ref 0 in
  Awg.iter_segments awg ~k:1 ~f:(fun seg ->
      check Alcotest.int "length 1" 1 (List.length seg);
      incr k1);
  check Alcotest.int "one segment per node" n !k1;
  (* Larger k yields strictly more segments on a chain. *)
  let k3 = ref 0 in
  Awg.iter_segments awg ~k:3 ~f:(fun seg ->
      check Alcotest.bool "bounded" true (List.length seg <= 3);
      incr k3);
  check Alcotest.bool "more segments with larger k" true (!k3 > !k1);
  (* Full paths end at leaves. *)
  List.iter
    (fun path ->
      let leaf = List.nth path (List.length path - 1) in
      check Alcotest.int "leaf has no children" 0 (Hashtbl.length leaf.Awg.children))
    (Awg.full_paths awg);
  Alcotest.check_raises "k must be >= 1"
    (Invalid_argument "Awg.iter_segments: k must be >= 1") (fun () ->
      Awg.iter_segments awg ~k:0 ~f:(fun _ -> ()))

let test_segment_count_formula () =
  (* A linear chain of n nodes has sum_{i=1..n} min(k, n-i+1) downward
     segments. Build one via nested service requests. *)
  let engine = Engine.create ~stream_id:0 () in
  let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
  let _v =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"v"
      ~base_stack:[ sig_ "app!op" ]
      [
        P.call (sig_ "a.sys!L1")
          [
            P.request svc
              [
                P.call (sig_ "b.sys!L2")
                  [
                    P.request svc
                      [ P.compute ~frame:(sig_ "c.sys!Leaf") (Time.ms 5) ];
                  ];
              ];
          ];
      ]
  in
  let st = Engine.run engine in
  let awg = Awg.build ~reduce:false drivers (graphs_of st) in
  (* Chain: Waiting(a.sys) -> Waiting(b.sys) -> Running(c.sys): n = 3. *)
  check Alcotest.int "three nodes" 3 (Awg.node_count awg);
  check Alcotest.int "one full path" 1 (List.length (Awg.full_paths awg));
  let count k =
    let n = ref 0 in
    Awg.iter_segments awg ~k ~f:(fun _ -> incr n);
    !n
  in
  check Alcotest.int "k=1: 3 segments" 3 (count 1);
  check Alcotest.int "k=2: 3+2 segments" 5 (count 2);
  check Alcotest.int "k=3: 3+2+1 segments" 6 (count 3);
  check Alcotest.int "k=4 saturates" 6 (count 4)

let test_costs_consistency () =
  let awg = Awg.build drivers (graphs_of (episode ~stream_id:0 ~hold_ms:30)) in
  check Alcotest.bool "leaf cost <= total cost" true
    (Awg.total_leaf_cost awg <= Awg.total_cost awg);
  check Alcotest.bool "positive" true (Awg.total_cost awg > 0)

let test_empty_awg () =
  let awg = Awg.build drivers [] in
  check Alcotest.int "no nodes" 0 (Awg.node_count awg);
  check (Alcotest.list Alcotest.string) "no paths" []
    (List.map (fun _ -> "p") (Awg.full_paths awg));
  check (Alcotest.float 1e-9) "fraction 0" 0.0 (Awg.non_optimizable_fraction awg)

let test_render_smoke () =
  let awg = Awg.build drivers (graphs_of (episode ~stream_id:0 ~hold_ms:30)) in
  let s = Awg.render awg in
  check Alcotest.bool "mentions d.sys" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 5 <= String.length s && (String.sub s i 5 = "d.sys" || contains (i + 1))
    in
    contains 0)

let () =
  Alcotest.run "dpcore-awg"
    [
      ( "awg",
        [
          Alcotest.test_case "structure/signatures" `Quick test_structure_and_signatures;
          Alcotest.test_case "merging accumulates" `Quick test_merging_accumulates;
          Alcotest.test_case "irrelevant promoted" `Quick test_irrelevant_nodes_promoted;
          Alcotest.test_case "reduction prunes direct hw" `Quick
            test_reduction_prunes_direct_hw;
          Alcotest.test_case "reduction keeps propagated" `Quick
            test_reduction_keeps_propagated;
          Alcotest.test_case "segments and paths" `Quick test_segments_and_paths;
          Alcotest.test_case "segment count formula" `Quick test_segment_count_formula;
          Alcotest.test_case "cost consistency" `Quick test_costs_consistency;
          Alcotest.test_case "empty" `Quick test_empty_awg;
          Alcotest.test_case "render smoke" `Quick test_render_smoke;
        ] );
    ]
