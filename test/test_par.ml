(* Tests for the dppar domain pool and for the determinism of the parallel
   analysis pipeline: parallel runs must be bit-identical to sequential
   ones. *)

module Pool = Dppar.Pool

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- pool basics --- *)

let test_map_matches_list_map () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      check
        Alcotest.(list int)
        "parallel_map = List.map"
        (List.map (fun x -> (x * 7) + 1) xs)
        (Pool.parallel_map pool (fun x -> (x * 7) + 1) xs))

let test_pool_reuse () =
  Pool.with_pool ~domains:3 (fun pool ->
      for round = 1 to 5 do
        let xs = List.init (17 * round) Fun.id in
        check
          Alcotest.(list int)
          (Printf.sprintf "round %d" round)
          (List.map (fun x -> x + round) xs)
          (Pool.parallel_map pool (fun x -> x + round) xs)
      done)

let test_empty_and_singleton () =
  Pool.with_pool ~domains:4 (fun pool ->
      check Alcotest.(list int) "empty" [] (Pool.parallel_map pool succ []);
      check Alcotest.(list int) "singleton" [ 42 ] (Pool.parallel_map pool succ [ 41 ]))

let test_chunk_edges () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 10 Fun.id in
      let expected = List.map succ xs in
      (* chunk = 1: one task per element. *)
      check Alcotest.(list int) "chunk=1" expected
        (Pool.parallel_map ~chunk:1 pool succ xs);
      (* chunk > length: degenerates to one inline List.map. *)
      check Alcotest.(list int) "chunk>n" expected
        (Pool.parallel_map ~chunk:1000 pool succ xs);
      (* chunk = length - 1: last chunk is a singleton. *)
      check Alcotest.(list int) "ragged last chunk" expected
        (Pool.parallel_map ~chunk:9 pool succ xs);
      (* invalid chunk rejected. *)
      Alcotest.check_raises "chunk=0" (Invalid_argument "Dppar.Pool: chunk 0 < 1")
        (fun () -> ignore (Pool.parallel_map ~chunk:0 pool succ xs)))

let test_size_one_inline () =
  Pool.with_pool ~domains:1 (fun pool ->
      check Alcotest.int "size" 1 (Pool.size pool);
      check
        Alcotest.(list int)
        "inline map"
        (List.map succ (List.init 50 Fun.id))
        (Pool.parallel_map pool succ (List.init 50 Fun.id)))

let test_exception_propagation () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 64 Fun.id in
      (* Two failing items; the earliest one (in input order) wins. One
         task per element makes "earliest chunk" = "earliest element". *)
      let boom x = if x = 5 || x = 40 then failwith (Printf.sprintf "boom%d" x) else x in
      Alcotest.check_raises "first failure re-raised" (Failure "boom5")
        (fun () -> ignore (Pool.parallel_map ~chunk:1 pool boom xs));
      (* The pool survives a failed call. *)
      check
        Alcotest.(list int)
        "pool usable after failure"
        (List.map succ xs)
        (Pool.parallel_map pool succ xs))

let test_map_reduce () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 (fun i -> i + 1) in
      check Alcotest.int "sum of squares"
        (List.fold_left (fun acc x -> acc + (x * x)) 0 xs)
        (Pool.parallel_map_reduce pool ~map:(fun x -> x * x) ~reduce:( + )
           ~init:0 xs);
      check Alcotest.int "empty list yields init" 17
        (Pool.parallel_map_reduce pool ~map:Fun.id ~reduce:( + ) ~init:17 []);
      (* Non-commutative but associative reduce: order must be preserved. *)
      check Alcotest.string "string concat keeps order"
        (String.concat "" (List.map string_of_int xs))
        (Pool.parallel_map_reduce pool ~map:string_of_int ~reduce:( ^ ) ~init:""
           xs))

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  check
    Alcotest.(list int)
    "works before shutdown" [ 2; 3 ]
    (Pool.parallel_map pool succ [ 1; 2 ]);
  Pool.shutdown pool;
  Pool.shutdown pool

let prop_map_equals_list_map =
  QCheck.Test.make ~count:100
    ~name:"parallel_map f = List.map f for arbitrary lists"
    QCheck.(pair (list small_int) small_int)
    (fun (xs, chunk) ->
      Pool.with_pool ~domains:4 (fun pool ->
          let chunk = 1 + abs chunk in
          let f x = (x * 31) lxor 5 in
          Pool.parallel_map ~chunk pool f xs = List.map f xs))

(* --- shared stream index memoisation --- *)

let test_shared_index_memoised () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.05) in
  match corpus.Dptrace.Corpus.streams with
  | [] -> Alcotest.fail "generated corpus has no streams"
  | st :: _ ->
    let a = Dptrace.Stream.shared_index st in
    let b = Dptrace.Stream.shared_index st in
    check Alcotest.bool "same physical index" true (a == b);
    (* The memoised index answers like a fresh one. *)
    let fresh = Dptrace.Stream.index st in
    Array.iter
      (fun (e : Dptrace.Event.t) ->
        check Alcotest.int
          (Printf.sprintf "thread %d events" e.Dptrace.Event.tid)
          (Array.length (Dptrace.Stream.events_of_thread fresh e.Dptrace.Event.tid))
          (Array.length (Dptrace.Stream.events_of_thread a e.Dptrace.Event.tid)))
      st.Dptrace.Stream.events

(* Regression: shared_index used a plain mutable field with its read
   outside the lock, so domains racing on a cold memo could observe a
   torn state or build distinct indexes. The memo is an Atomic now: all
   concurrent readers must settle on one physical index. Repeated over
   many cold streams to give the race room to fire. *)
let test_shared_index_race () =
  Pool.with_pool ~domains:4 (fun pool ->
      let corpus =
        Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.05)
      in
      List.iter
        (fun st ->
          (* 16 tasks per stream, chunk 1: several domains hit the cold
             memo at once. *)
          let seen =
            Pool.parallel_map ~chunk:1 pool
              (fun _ -> Dptrace.Stream.shared_index st)
              (List.init 16 Fun.id)
          in
          match seen with
          | first :: rest ->
            List.iteri
              (fun i idx ->
                check Alcotest.bool
                  (Printf.sprintf "stream %d task %d: same index"
                     st.Dptrace.Stream.id i)
                  true (idx == first))
              rest
          | [] -> Alcotest.fail "no tasks ran")
        corpus.Dptrace.Corpus.streams)

(* --- pipeline determinism: sequential vs 4 domains --- *)

let small_corpus =
  lazy (Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.1))

let drivers = Dpcore.Component.drivers

let scenario_fingerprint (r : Dpcore.Pipeline.scenario_result) =
  (* Covers every float- and ranking-bearing part of the result. *)
  Format.asprintf "%a|%a|%f|%f|%s|%s"
    Dpcore.Impact.pp r.Dpcore.Pipeline.slow_impact
    Fmt.(pair ~sep:comma float float)
    ( r.Dpcore.Pipeline.coverages.Dpcore.Evaluation.itc,
      r.Dpcore.Pipeline.coverages.Dpcore.Evaluation.ttc )
    (Dpcore.Pipeline.driver_cost_fraction r)
    (Dpcore.Awg.non_optimizable_fraction r.Dpcore.Pipeline.slow_awg)
    (Dpcore.Awg.render r.Dpcore.Pipeline.slow_awg)
    (Dpcore.Report.top_patterns r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
       ~n:max_int)

let test_run_scenario_deterministic () =
  let corpus = Lazy.force small_corpus in
  let name = "BrowserTabCreate" in
  let seq = Dpcore.Pipeline.run_scenario drivers corpus name in
  Pool.with_pool ~domains:1 (fun pool ->
      let j1 = Dpcore.Pipeline.run_scenario ~pool drivers corpus name in
      check Alcotest.string "-j 1 = sequential" (scenario_fingerprint seq)
        (scenario_fingerprint j1));
  Pool.with_pool ~domains:4 (fun pool ->
      let j4 = Dpcore.Pipeline.run_scenario ~pool drivers corpus name in
      check Alcotest.string "-j 4 = sequential" (scenario_fingerprint seq)
        (scenario_fingerprint j4))

let test_impact_deterministic () =
  let corpus = Lazy.force small_corpus in
  let seq = Dpcore.Impact.analyze drivers corpus in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = Dpcore.Impact.analyze ~pool drivers corpus in
      check Alcotest.bool "identical impact records" true (seq = par);
      let seq_ps = Dpcore.Pipeline.impact_per_scenario drivers corpus in
      let par_ps = Dpcore.Pipeline.impact_per_scenario ~pool drivers corpus in
      check Alcotest.bool "identical per-scenario impact" true (seq_ps = par_ps))

let test_run_all_deterministic () =
  let corpus = Lazy.force small_corpus in
  let seq = Dpcore.Pipeline.run_all drivers corpus in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = Dpcore.Pipeline.run_all ~pool drivers corpus in
      check Alcotest.int "same scenario count" (List.length seq) (List.length par);
      List.iter2
        (fun (na, ra) (nb, rb) ->
          check Alcotest.string "same scenario order" na nb;
          check Alcotest.string
            (Printf.sprintf "scenario %s identical" na)
            (scenario_fingerprint ra) (scenario_fingerprint rb))
        seq par)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map matches List.map" `Quick
            test_map_matches_list_map;
          Alcotest.test_case "pool reuse across calls" `Quick test_pool_reuse;
          Alcotest.test_case "empty and singleton inputs" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "chunking edge cases" `Quick test_chunk_edges;
          Alcotest.test_case "1-domain pool runs inline" `Quick
            test_size_one_inline;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "map-reduce in fixed order" `Quick test_map_reduce;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          qcheck prop_map_equals_list_map;
        ] );
      ( "shared-index",
        [
          Alcotest.test_case "memoised and consistent" `Quick
            test_shared_index_memoised;
          Alcotest.test_case "4-domain cold-memo race" `Slow
            test_shared_index_race;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "run_scenario: -j1 and -j4 = sequential" `Slow
            test_run_scenario_deterministic;
          Alcotest.test_case "impact: parallel = sequential" `Slow
            test_impact_deterministic;
          Alcotest.test_case "run_all: parallel = sequential" `Slow
            test_run_all_deterministic;
        ] );
    ]
