(* Tests for Wait Graph construction (Definition 1). *)

module P = Dpsim.Program
module Engine = Dpsim.Engine
module WG = Dpwaitgraph.Wait_graph
module Event = Dptrace.Event
module Stream = Dptrace.Stream
module Time = Dputil.Time

let check = Alcotest.check
let sig_ = Dptrace.Signature.of_string

(* A two-thread contention stream: holder takes L for 10 ms, victim (the
   scenario instance) blocks on L. *)
let contention_stream () =
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"holder" ~base_stack:[ sig_ "bg!work" ]
      [ P.locked lock [ P.compute ~frame:(sig_ "d.sys!Hold") (Time.ms 10) ] ]
  in
  let _victim =
    Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"victim"
      ~base_stack:[ sig_ "app!op" ]
      [
        P.compute (Time.ms 1);
        P.call (sig_ "d.sys!Get") [ P.locked lock [ P.compute (Time.ms 2) ] ];
      ]
  in
  let st = Engine.run engine in
  (st, List.hd st.Stream.instances)

let test_roots_are_initiating_thread () =
  let st, inst = contention_stream () in
  let g = WG.build st inst in
  List.iter
    (fun n ->
      check Alcotest.int "root tid" inst.Dptrace.Scenario.tid
        n.WG.event.Event.tid)
    g.WG.roots;
  check Alcotest.bool "has roots" true (g.WG.roots <> [])

let test_wait_expansion () =
  let st, inst = contention_stream () in
  let g = WG.build st inst in
  let wait_node =
    List.find (fun n -> Event.is_wait n.WG.event) g.WG.roots
  in
  (* The victim's wait must carry its waker and expose the holder's
     running event as a child. *)
  (match wait_node.WG.waker with
  | Some u -> check Alcotest.int "waker targets victim" inst.Dptrace.Scenario.tid u.Event.wtid
  | None -> Alcotest.fail "wait node has no waker");
  check Alcotest.bool "holder activity visible" true
    (List.exists
       (fun c ->
         Event.is_running c.WG.event
         && Option.map Dptrace.Signature.name (Dptrace.Callstack.top c.WG.event.Event.stack)
            = Some "d.sys!Hold")
       wait_node.WG.children)

let test_no_unwait_nodes () =
  let st, inst = contention_stream () in
  let g = WG.build st inst in
  WG.iter_nodes g (fun n ->
      check Alcotest.bool "no unwait node" false (Event.is_unwait n.WG.event))

let test_iter_nodes_unique () =
  let case = Dpworkload.Motivating_case.build () in
  let g =
    WG.build case.Dpworkload.Motivating_case.stream
      case.Dpworkload.Motivating_case.browser_instance
  in
  let seen = Hashtbl.create 64 in
  WG.iter_nodes g (fun n ->
      check Alcotest.bool "visited once" false (Hashtbl.mem seen n.WG.event.Event.id);
      Hashtbl.replace seen n.WG.event.Event.id ());
  check Alcotest.int "node_count agrees" (Hashtbl.length seen) (WG.node_count g)

let test_motivating_case_depth_and_leaf () =
  let case = Dpworkload.Motivating_case.build () in
  let g =
    WG.build case.Dpworkload.Motivating_case.stream
      case.Dpworkload.Motivating_case.browser_instance
  in
  check Alcotest.bool "deep propagation chain" true (WG.depth g >= 5);
  (* The chain must bottom out in the disk service. *)
  let has_disk = ref false in
  WG.iter_nodes g (fun n ->
      if Event.is_hw_service n.WG.event then has_disk := true);
  check Alcotest.bool "hardware leaf reached" true !has_disk;
  check Alcotest.bool "accumulated wait exceeds instance" true
    (WG.wait_time g
    > Dptrace.Scenario.duration case.Dpworkload.Motivating_case.browser_instance)

let test_instance_window_excludes_outside_events () =
  let engine = Engine.create ~stream_id:0 () in
  let tid =
    Engine.spawn engine ~start_at:0 ~name:"t" ~base_stack:[ sig_ "app!m" ]
      [ P.compute (Time.ms 5); P.idle (Time.ms 100); P.compute (Time.ms 5) ]
  in
  let st = Engine.run engine in
  (* Craft an instance window that covers only the first compute. *)
  let inst = { Dptrace.Scenario.scenario = "S"; tid; t0 = 0; t1 = Time.ms 50 } in
  let g = WG.build st inst in
  check Alcotest.int "only first compute" 1 (WG.node_count g)

let test_shared_event_identity () =
  (* Two instances waiting on the same holder must reference the identical
     holder event (same id) through their graphs. *)
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"Q" in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [
        P.locked
          ~acquire_frames:[ sig_ "App!Queue" ]
          lock
          [
            P.call (sig_ "d.sys!Deep")
              [
                P.request
                  (Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ])
                  [ P.compute ~frame:(sig_ "d.sys!Work") (Time.ms 30) ];
              ];
          ];
      ]
  in
  let spawn_victim i =
    Engine.spawn engine ~scenario:"S"
      ~start_at:(Time.ms (1 + i))
      ~name:(Printf.sprintf "v%d" i)
      ~base_stack:[ sig_ "app!op" ]
      [
        P.locked ~acquire_frames:[ sig_ "App!Queue" ] lock
          [ P.compute (Time.ms 1) ];
      ]
  in
  let _v0 = spawn_victim 0 and _v1 = spawn_victim 1 in
  let st = Engine.run engine in
  let idx = Stream.index st in
  let graphs =
    List.map (WG.build ~index:idx st) st.Stream.instances
  in
  let driver_wait_ids g =
    let ids = ref [] in
    WG.iter_nodes g (fun n ->
        if
          Event.is_wait n.WG.event
          && Dptrace.Callstack.contains (sig_ "d.sys!Deep") n.WG.event.Event.stack
        then ids := n.WG.event.Event.id :: !ids);
    List.sort_uniq compare !ids
  in
  match List.map driver_wait_ids graphs with
  | [ a; b ] when a <> [] ->
    check (Alcotest.list Alcotest.int) "same physical wait event" a b
  | _ -> Alcotest.fail "expected the holder's wait in both victim graphs"

let test_truncated_wait_tolerated () =
  (* A wait without its unwait (hand-crafted) must yield a leaf node, not
     an error. *)
  let w =
    {
      Event.id = 0;
      kind = Event.Wait;
      stack = Dptrace.Callstack.of_strings [ "x.sys!F" ];
      ts = 0;
      cost = 100;
      tid = 1;
      wtid = -1;
    }
  in
  let st = Stream.create ~id:0 ~events:[ w ] ~instances:[] ~threads:[] in
  let inst = { Dptrace.Scenario.scenario = "S"; tid = 1; t0 = 0; t1 = 100 } in
  let g = WG.build st inst in
  match g.WG.roots with
  | [ n ] ->
    check Alcotest.bool "no waker" true (n.WG.waker = None);
    check (Alcotest.list Alcotest.int) "no children" []
      (List.map (fun c -> c.WG.event.Event.id) n.WG.children)
  | _ -> Alcotest.fail "expected a single root"

let test_adversarial_unwait_cycle_terminates () =
  (* Streams with nonsensical mutual unwaits must not hang the builder. *)
  let mk kind tid ts cost wtid =
    {
      Event.id = 0;
      kind;
      stack = Dptrace.Callstack.of_strings [ "x.sys!F" ];
      ts;
      cost;
      tid;
      wtid;
    }
  in
  let events =
    [
      mk Event.Wait 1 0 100 (-1);
      mk Event.Wait 2 0 100 (-1);
      mk Event.Unwait 1 100 0 2;
      mk Event.Unwait 2 100 0 1;
    ]
  in
  let st = Stream.create ~id:0 ~events ~instances:[] ~threads:[] in
  let inst = { Dptrace.Scenario.scenario = "S"; tid = 1; t0 = 0; t1 = 200 } in
  let g = WG.build st inst in
  check Alcotest.bool "terminates with nodes" true (WG.node_count g > 0)

let test_pp_smoke () =
  let st, inst = contention_stream () in
  let g = WG.build st inst in
  let rendered = Format.asprintf "%a" WG.pp g in
  check Alcotest.bool "mentions victim scenario" true (String.length rendered > 40)

let () =
  Alcotest.run "dpwaitgraph"
    [
      ( "construction",
        [
          Alcotest.test_case "roots" `Quick test_roots_are_initiating_thread;
          Alcotest.test_case "wait expansion" `Quick test_wait_expansion;
          Alcotest.test_case "no unwait nodes" `Quick test_no_unwait_nodes;
          Alcotest.test_case "iter uniqueness" `Quick test_iter_nodes_unique;
          Alcotest.test_case "motivating case" `Quick test_motivating_case_depth_and_leaf;
          Alcotest.test_case "window filtering" `Quick
            test_instance_window_excludes_outside_events;
          Alcotest.test_case "shared event identity" `Quick test_shared_event_identity;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "truncated wait" `Quick test_truncated_wait_tolerated;
          Alcotest.test_case "adversarial cycle" `Quick
            test_adversarial_unwait_cycle_terminates;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
    ]
